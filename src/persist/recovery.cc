#include "persist/recovery.hh"

#include <unordered_set>

#include "base/logging.hh"
#include "base/trace_flags.hh"
#include "cpu/pagetable_defs.hh"
#include "persist/pt_policy.hh"

namespace kindle::persist
{

namespace
{

/** Collect all NVM frames reachable from a persistent page table. */
void
collectPtFrames(os::Kernel &kernel, Addr table, unsigned level,
                std::unordered_set<Addr> &live)
{
    live.insert(table);
    auto &mem = kernel.kmem().mem();
    for (unsigned i = 0; i < cpu::ptEntriesPerPage; ++i) {
        const cpu::Pte pte{mem.readT<std::uint64_t>(
            table + i * cpu::ptEntrySize)};
        if (!pte.present())
            continue;
        if (level == 0) {
            if (pte.nvmBacked())
                live.insert(pte.frameAddr());
        } else {
            collectPtFrames(kernel, pte.frameAddr(), level - 1, live);
        }
    }
}

} // namespace

RecoveryReport
recover(os::Kernel &kernel, PtScheme scheme)
{
    RecoveryReport report;
    sim::Simulation &sim = kernel.simulation();
    const Tick t0 = sim.now();

    // 1. Frame allocator state survives in the durable bitmap.
    kernel.nvmAllocator().recoverFromBitmap();

    // 1b. Persistent scheme: repair any wrapped page-table store the
    //     crash tore mid-writeback, before the tables are trusted.
    if (scheme == PtScheme::persistent) {
        const os::NvmLayout &layout = kernel.nvmLayout();
        const std::uint64_t half = layout.redoLogBytes / 2;
        const PtUndoReport undo = recoverPtUndoLog(
            kernel.kmem(), layout.redoLog + half, half);
        report.tornPtStoresRolledBack = undo.tornStoresRolledBack;
    }

    std::unordered_set<Addr> live_frames;

    // 2-3. Scan the directory.
    for (unsigned idx = 0; idx < os::maxProcs; ++idx) {
        SavedStateSlot slot(kernel.kmem(), kernel.nvmLayout(), idx);
        const SlotHeader hdr = slot.readHeader();
        if (!hdr.valid)
            continue;
        kindle_assert(hdr.scheme == static_cast<std::uint32_t>(scheme),
                      "slot {} was checkpointed under the {} scheme",
                      idx,
                      ptSchemeName(static_cast<PtScheme>(hdr.scheme)));

        const bool persistent = scheme == PtScheme::persistent;
        os::Process &proc = kernel.spawnShell(
            std::string(hdr.name), idx, /*create_pt=*/!persistent);
        proc.restored = true;

        const SavedContext ctx = slot.readConsistentContext(hdr);
        proc.context = ctx.regs;
        SavedStateSlot::restoreAspace(proc, ctx);

        if (persistent) {
            // Adopt the NVM-resident table: just reload the root
            // (the "set PTBR" step of the paper).
            proc.ptRoot = hdr.ptRoot;
            kernel.pageTables().adopt(proc.ptRoot);
            collectPtFrames(kernel, proc.ptRoot, cpu::ptLevels - 1,
                            live_frames);
        } else {
            // Rebuild the DRAM page table from the mapping list.
            const auto mappings = slot.readMappingList(hdr);
            for (const MappingEntry &m : mappings) {
                kernel.pageTables().map(
                    proc.ptRoot, m.vpn << pageShift,
                    m.pfn << pageShift, /*writable=*/true,
                    /*nvm_backed=*/true);
                live_frames.insert(m.pfn << pageShift);
            }
            report.mappingsRestored += mappings.size();
        }

        proc.state = os::ProcState::ready;
        ++report.processesRecovered;
        trace::dprintf(trace::Flag::recovery, sim.now(),
                       "recovered pid {} ({} VMAs)", proc.pid,
                       ctx.vmaCount);
    }

    // 4. Reclaim NVM frames that were allocated after the last
    //    checkpoint (present in the bitmap, reachable from nothing).
    std::vector<Addr> leaked;
    kernel.nvmAllocator().forEachAllocated([&](Addr frame) {
        if (!live_frames.count(frame))
            leaked.push_back(frame);
    });
    for (Addr frame : leaked)
        kernel.nvmAllocator().free(frame);
    report.framesReclaimed = leaked.size();

    report.recoveryTicks = sim.now() - t0;
    return report;
}

} // namespace kindle::persist
