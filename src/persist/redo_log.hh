/**
 * @file
 * An NVM-resident redo log for OS metadata mutations.
 *
 * Every record occupies one cache line and is appended durably
 * (store + clwb + fence).  Records are stamped with the log's current
 * epoch and a sequence number, so a crash-time reader can recover the
 * valid tail without a separately-persisted count: it scans records
 * while (epoch, seq) match the expected progression.  reset() bumps the
 * epoch in the durable header, logically truncating the log in a
 * single line write — this is what the checkpoint does after applying
 * all records to the working copy.
 */

#ifndef KINDLE_PERSIST_REDO_LOG_HH
#define KINDLE_PERSIST_REDO_LOG_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "os/kernel_mem.hh"

namespace kindle::persist
{

/** Types of metadata mutations captured in the log. */
enum class RedoType : std::uint32_t
{
    invalid = 0,
    processCreated,
    processExit,
    vmaAdded,
    vmaRemoved,
    cpuState,
    faseMark,
    frameRetired,  ///< bad NVM frame retired; payload: bad, new, vaddr
};

/** One 64-byte log record. */
struct RedoRecord
{
    std::uint32_t magic = 0;      ///< validity marker
    RedoType type = RedoType::invalid;
    std::uint32_t pid = 0;
    std::uint32_t epoch = 0;
    std::uint64_t seq = 0;
    std::uint64_t a = 0;          ///< payload (type specific)
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::uint64_t d = 0;
    std::uint32_t checksum = 0;   ///< FNV-1a with this field zeroed
    std::uint32_t pad = 0;

    static constexpr std::uint32_t magicValue = 0x52444c47;  // "RDLG"
};

static_assert(sizeof(RedoRecord) == 64, "records must be line sized");

/**
 * Result of the crash-time log scan.  The scan never trusts a durable
 * byte: record headers are bounds-checked and checksummed, so a torn
 * append or a garbage tail classifies as a truncation instead of
 * feeding corrupt mutations into recovery (or walking into UB).
 */
struct RedoScan
{
    /** Records that validated, in append order. */
    std::vector<RedoRecord> records;
    /** Durable log header failed its magic/checksum validation. */
    bool headerCorrupt = false;
    /** Scan stopped at a corrupt record (vs a clean end-of-log). */
    bool truncatedTail = false;
    /** Record slots examined (including the one that stopped us). */
    std::uint64_t scanned = 0;
};

/** The log itself. */
class RedoLog
{
  public:
    /**
     * @param kmem     Kernel memory gateway.
     * @param base     NVM address of the log region.
     * @param capacity Region size in bytes (header + records).
     * @param name     Stats name.
     */
    RedoLog(os::KernelMem &kmem, Addr base, std::uint64_t capacity,
            std::string name);

    /** Durably append one record (epoch/seq/magic filled in). */
    void append(RedoRecord rec);

    /** Records appended since the last reset. */
    std::uint64_t pending() const { return seq; }

    /**
     * Fire @p fn once when an append fills the log to @p threshold
     * records (re-armed by reset()).  The checkpoint layer uses this
     * to truncate the log *before* it can wrap and destroy un-replayed
     * records.  @p threshold 0 disables.
     */
    void
    setHighWater(std::uint64_t threshold, std::function<void()> fn)
    {
        highWaterThreshold = threshold;
        highWaterCb = std::move(fn);
    }

    /** Records overwritten by in-epoch wraps (0 when never wrapped). */
    std::uint64_t
    wrapDestroyedRecords() const
    {
        return wrapDestroyedCount;
    }

    /**
     * Read back every record of the current epoch (charged as
     * uncached NVM reads — the checkpoint's "apply" scan).
     */
    void replay(const std::function<void(const RedoRecord &)> &fn);

    /** Truncate: bump the epoch durably. */
    void reset();

    /**
     * Crash recovery: re-learn epoch from the durable header and
     * return the records that were durable at crash time, plus a
     * taxonomy of anything untrustworthy met along the way.
     */
    RedoScan recoverScan();

    /** Legacy wrapper: fatal on a corrupt header, records only. */
    std::vector<RedoRecord> recoverRecords();

    /**
     * Read-only audit of a durable log region (no repair, no epoch
     * adoption) — what recovery uses to classify the surviving log
     * without constructing a RedoLog (whose constructor would quietly
     * re-establish a corrupt header).
     */
    static RedoScan audit(os::KernelMem &kmem, Addr base,
                          std::uint64_t capacity);

    /** Capacity in records. */
    std::uint64_t capacityRecords() const { return maxRecords; }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    Addr recordAddr(std::uint64_t index) const
    {
        return base + lineSize + index * sizeof(RedoRecord);
    }

    os::KernelMem &kmem;
    Addr base;
    std::uint64_t maxRecords;
    std::uint32_t epoch = 1;
    std::uint64_t seq = 0;

    std::uint64_t highWaterThreshold = 0;
    std::function<void()> highWaterCb;
    /** Set once the current epoch has wrapped: every append from here
     *  on lands on a record replay can no longer see. */
    bool wrapped = false;
    std::uint64_t wrapDestroyedCount = 0;

    statistics::StatGroup statGroup;
    statistics::Scalar &appends;
    statistics::Scalar &replays;
    statistics::Scalar &resets;
    statistics::Scalar &wraps;
    /** Un-replayed records destroyed by wraps; registered lazily on
     *  the first wrap so default runs export no extra stat. */
    statistics::Scalar *wrapDestroyed = nullptr;
};

} // namespace kindle::persist

#endif // KINDLE_PERSIST_REDO_LOG_HH
