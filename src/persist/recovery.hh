/**
 * @file
 * Crash recovery: reconstruct processes from the NVM saved state.
 *
 * After a reboot (fresh kernel over the surviving NVM image) the
 * recovery procedure:
 *
 *   1. restores the NVM frame allocator from its durable bitmap,
 *   2. scans the saved-state directory, creating a process shell for
 *      each valid slot and restoring its consistent context (CPU
 *      registers + VMA layout),
 *   3. re-establishes the page table — adopting the NVM-resident root
 *      (persistent scheme) or rebuilding a fresh DRAM table from the
 *      mapping list (rebuild scheme),
 *   4. reclaims NVM frames that were allocated after the last
 *      checkpoint and are no longer reachable,
 *   5. marks each recovered process ready for execution.
 */

#ifndef KINDLE_PERSIST_RECOVERY_HH
#define KINDLE_PERSIST_RECOVERY_HH

#include "os/kernel.hh"
#include "persist/saved_state.hh"

namespace kindle::persist
{

/** What recovery accomplished. */
struct RecoveryReport
{
    unsigned processesRecovered = 0;
    std::uint64_t mappingsRestored = 0;  ///< rebuild-scheme PT entries
    std::uint64_t framesReclaimed = 0;   ///< post-checkpoint leaks
    std::uint64_t tornPtStoresRolledBack = 0;  ///< persistent scheme
    Tick recoveryTicks = 0;              ///< simulated recovery time
};

/**
 * Run recovery against a freshly-booted kernel.  Must be invoked
 * before a new PersistDomain is started (the domain then adopts the
 * recovered slots).
 *
 * @param kernel  The post-reboot kernel.
 * @param scheme  The page-table scheme the crashed system used.
 */
RecoveryReport recover(os::Kernel &kernel, PtScheme scheme);

} // namespace kindle::persist

#endif // KINDLE_PERSIST_RECOVERY_HH
