/**
 * @file
 * Crash recovery: reconstruct processes from the NVM saved state.
 *
 * After a reboot (fresh kernel over the surviving NVM image) the
 * recovery procedure:
 *
 *   1. restores the NVM frame allocator from its durable bitmap,
 *   2. scans the saved-state directory, creating a process shell for
 *      each valid slot and restoring its consistent context (CPU
 *      registers + VMA layout),
 *   3. re-establishes the page table — adopting the NVM-resident root
 *      (persistent scheme) or rebuilding a fresh DRAM table from the
 *      mapping list (rebuild scheme),
 *   4. reclaims NVM frames that were allocated after the last
 *      checkpoint and are no longer reachable,
 *   5. marks each recovered process ready for execution.
 *
 * Recovery runs in *salvage mode*: instead of panicking on the first
 * untrustworthy durable byte, it classifies each problem into the
 * RecoveryError taxonomy, quarantines the affected slot (durably, so
 * a second reboot does not retry it), recovers every process whose
 * image validates, and still reclaims leaked frames — graceful
 * degradation rather than a dead system.
 */

#ifndef KINDLE_PERSIST_RECOVERY_HH
#define KINDLE_PERSIST_RECOVERY_HH

#include <string>
#include <vector>

#include "os/kernel.hh"
#include "persist/saved_state.hh"

namespace kindle::persist
{

/** Classes of damage the salvage pass can meet. */
enum class RecoveryErrorCode
{
    headerChecksumMismatch,   ///< slot header fails its checksum
    contextChecksumMismatch,  ///< consistent context fails its checksum
    contextBadCount,          ///< context VMA count exceeds capacity
    mappingListBadCount,      ///< mapping count exceeds its region
    danglingMapping,          ///< mapping references a bogus/free frame
    schemeMismatch,           ///< slot checkpointed under another scheme
    redoLogHeaderCorrupt,     ///< metadata log header unreadable
    redoLogTruncatedTail,     ///< metadata log ends in a torn record
    retiredFrameDamage,       ///< durable state sits on a retired frame
};

const char *recoveryErrorName(RecoveryErrorCode code);

/** One classified problem met during recovery. */
struct RecoveryError
{
    RecoveryErrorCode code;
    unsigned slot;      ///< affected slot, or ~0u for log-wide errors
    std::string detail;
};

/** What recovery accomplished. */
struct RecoveryReport
{
    unsigned processesRecovered = 0;
    unsigned processesQuarantined = 0;   ///< fenced off this recovery
    std::uint64_t mappingsRestored = 0;  ///< rebuild-scheme PT entries
    std::uint64_t mappingsDropped = 0;   ///< dangling entries skipped
    std::uint64_t framesReclaimed = 0;   ///< post-checkpoint leaks
    std::uint64_t tornPtStoresRolledBack = 0;  ///< persistent scheme
    std::uint64_t redoRecordsSurvived = 0;     ///< validated log tail
    std::uint64_t retiredFrames = 0;   ///< bad-frame list population
    Tick recoveryTicks = 0;              ///< simulated recovery time
    std::vector<RecoveryError> errors;   ///< full taxonomy

    /** No damage met: every valid slot recovered verbatim. */
    bool clean() const { return errors.empty(); }
};

/**
 * Run recovery against a freshly-booted kernel.  Must be invoked
 * before a new PersistDomain is started (the domain then adopts the
 * recovered slots).
 *
 * @param kernel  The post-reboot kernel.
 * @param scheme  The page-table scheme the crashed system used.
 */
RecoveryReport recover(os::Kernel &kernel, PtScheme scheme);

} // namespace kindle::persist

#endif // KINDLE_PERSIST_RECOVERY_HH
