#include "persist/pt_policy.hh"

#include <map>
#include <vector>

#include "base/checksum.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "fault/fault.hh"
#include "trace/trace.hh"

namespace kindle::persist
{

namespace
{

/** Durable header in the first line of the undo region. */
struct UndoHeader
{
    std::uint32_t magic;
    std::uint32_t epoch;

    static constexpr std::uint32_t magicValue = 0x50544844;  // "PTHD"
};

std::uint32_t
undoChecksum(PtUndoRecord rec)
{
    rec.checksum = 0;
    return checksum32(&rec, sizeof(rec));
}

} // namespace

ConsistentPtWrite::ConsistentPtWrite(os::KernelMem &kmem_arg,
                                     Addr log_base,
                                     std::uint64_t log_bytes)
    : kmem(kmem_arg),
      logBase(log_base),
      logRecords((log_bytes - lineSize) / sizeof(PtUndoRecord)),
      statGroup("ptConsistency",
                "page-table consistency scheme"),
      stores(statGroup.addScalar("wrappedStores",
                                 "consistency-wrapped PTE stores"))
{
    kindle_assert(logRecords > 0, "PT undo log region too small");
    // Adopt a surviving epoch or establish the header.
    UndoHeader hdr{};
    kmem.mem().readNvmDurable(logBase, &hdr, sizeof(hdr));
    if (hdr.magic == UndoHeader::magicValue) {
        epoch = hdr.epoch;
    } else {
        persistEpoch();
    }
}

void
ConsistentPtWrite::persistEpoch()
{
    const UndoHeader hdr{UndoHeader::magicValue, epoch};
    kmem.writeBufDurable(logBase, &hdr, sizeof(hdr));
}

void
ConsistentPtWrite::retireAll()
{
    ++epoch;
    nextSeq = 0;
    persistEpoch();
}

void
ConsistentPtWrite::writeEntry(Addr entry_addr, std::uint64_t value)
{
    KINDLE_TRACE_SPAN_ARGS(pt, pt, "pt.wrappedStore", "entry={}",
                           entry_addr);
    ++stores;

    // 1. Read the current value (cached; tables are hot).
    const std::uint64_t old_value = kmem.read64(entry_addr);

    // 2. Durable undo record.  The ring is sized far beyond any
    //    checkpoint interval's store count, so in-epoch wrap-around
    //    only recycles long-retired slots.
    PtUndoRecord rec;
    rec.magic = PtUndoRecord::magicValue;
    rec.epoch = epoch;
    rec.entryAddr = entry_addr;
    rec.oldValue = old_value;
    rec.newValue = value;
    rec.seq = nextSeq;
    rec.checksum = undoChecksum(rec);
    const Addr rec_addr =
        logBase + lineSize +
        (nextSeq % logRecords) * sizeof(PtUndoRecord);
    ++nextSeq;
    kmem.writeBufDurable(rec_addr, &rec, sizeof(rec));
    KINDLE_CRASH_SITE("pt.after_undo_append");

    // 3. The store itself, written back and fenced.  A crash between
    //    the clwb and the fence can lose — or tear — the store in the
    //    controller's write buffer; that is exactly the window the
    //    undo log exists for.
    kmem.write64(entry_addr, value);
    KINDLE_CRASH_SITE("pt.after_store");
    kmem.clwb(entry_addr);
    KINDLE_CRASH_SITE("pt.after_clwb");
    kmem.sfence();

    // Records are retired wholesale: the periodic checkpoint bumps
    // the log epoch (one durable header write), invalidating every
    // record at once — per-store retirement writes are unnecessary.
}

PtUndoReport
recoverPtUndoLog(os::KernelMem &kmem, Addr log_base,
                 std::uint64_t log_bytes)
{
    PtUndoReport report;

    UndoHeader hdr{};
    kmem.readDurableBuf(log_base, &hdr, sizeof(hdr));
    if (hdr.magic != UndoHeader::magicValue)
        return report;  // log never initialized: nothing to do

    const std::uint64_t records =
        (log_bytes - lineSize) / sizeof(PtUndoRecord);

    // Collect live records, keeping only the newest per entry (an
    // entry rewritten within the epoch is governed by its latest
    // wrapped store).
    std::map<Addr, PtUndoRecord> newest;
    for (std::uint64_t i = 0; i < records; ++i) {
        PtUndoRecord rec{};
        kmem.mem().readNvmDurable(log_base + lineSize +
                                      i * sizeof(PtUndoRecord),
                                  &rec, sizeof(rec));
        if (rec.magic != PtUndoRecord::magicValue ||
            rec.epoch != hdr.epoch) {
            continue;
        }
        // A record can itself be torn (the crash can land mid-append):
        // never trust its payload without the checksum, and never
        // dereference an entry address outside the NVM page tables.
        if (rec.checksum != undoChecksum(rec) ||
            !kmem.mem().nvmRange().contains(rec.entryAddr) ||
            rec.entryAddr % sizeof(std::uint64_t) != 0) {
            continue;
        }
        ++report.recordsExamined;
        // Charge the scan as a bulk read once at the end; individual
        // records are examined functionally.
        auto [it, inserted] = newest.try_emplace(rec.entryAddr, rec);
        if (!inserted && rec.seq > it->second.seq)
            it->second = rec;
    }
    // Timing: one streaming read over the populated prefix.
    if (report.recordsExamined > 0) {
        kmem.simulation().bump(kmem.mem().submit(
            {mem::MemCmd::bulkRead, log_base,
             (report.recordsExamined + 1) * sizeof(PtUndoRecord)},
            kmem.simulation().now()));
    }

    for (const auto &[entry_addr, rec] : newest) {
        const auto durable =
            [&] {
                std::uint64_t v = 0;
                kmem.mem().readNvmDurable(entry_addr, &v, sizeof(v));
                return v;
            }();
        if (durable == rec.newValue || durable == rec.oldValue)
            continue;  // store completed, or never reached the device
        // Torn entry: restore the pre-store image.
        kmem.writeBufDurable(entry_addr, &rec.oldValue,
                             sizeof(rec.oldValue));
        ++report.tornStoresRolledBack;
    }
    return report;
}

} // namespace kindle::persist
