#include "persist/redo_log.hh"

#include "base/checksum.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "fault/fault.hh"
#include "telemetry/profiler.hh"
#include "trace/trace.hh"

namespace kindle::persist
{

namespace
{

/** Durable header occupying the first line of the region. */
struct LogHeader
{
    std::uint32_t magic;
    std::uint32_t epoch;
    std::uint32_t checksum;
    std::uint32_t pad;

    static constexpr std::uint32_t magicValue = 0x4c474844;  // "LGHD"
};

std::uint32_t
logHeaderChecksum(LogHeader hdr)
{
    hdr.checksum = 0;
    return checksum32(&hdr, sizeof(hdr));
}

std::uint32_t
recordChecksum(RedoRecord rec)
{
    rec.checksum = 0;
    return checksum32(&rec, sizeof(rec));
}

} // namespace

RedoLog::RedoLog(os::KernelMem &kmem_arg, Addr base_arg,
                 std::uint64_t capacity, std::string name)
    : kmem(kmem_arg),
      base(base_arg),
      maxRecords((capacity - lineSize) / sizeof(RedoRecord)),
      statGroup(std::move(name), "redo log in NVM"),
      appends(statGroup.addScalar("appends", "records appended")),
      replays(statGroup.addScalar("replays", "records replayed")),
      resets(statGroup.addScalar("resets", "epoch bumps")),
      wraps(statGroup.addScalar("wraps", "in-epoch wraparounds"))
{
    kindle_assert(maxRecords > 0, "redo log region too small");
    // Establish the durable header (idempotent if already present).
    LogHeader hdr{};
    kmem.mem().readNvmDurable(base, &hdr, sizeof(hdr));
    if (hdr.magic == LogHeader::magicValue &&
        hdr.checksum == logHeaderChecksum(hdr)) {
        epoch = hdr.epoch;
    } else {
        hdr = LogHeader{};
        hdr.magic = LogHeader::magicValue;
        hdr.epoch = epoch;
        hdr.checksum = logHeaderChecksum(hdr);
        kmem.writeBufDurable(base, &hdr, sizeof(hdr));
    }
}

void
RedoLog::append(RedoRecord rec)
{
    KINDLE_PROF_SCOPE(redo);
    if (seq >= maxRecords) {
        // The region is sized so this only happens under extreme
        // checkpoint intervals; fold the tail forward.  The consistent
        // copy is still intact, but every record overwritten between
        // here and the next reset() is gone as far as replay is
        // concerned — count each one and leave a flight-recorder
        // breadcrumb instead of losing them silently.
        KINDLE_CRASH_SITE("redo.pre_wrap");
        ++wraps;
        wrapped = true;
        if (!wrapDestroyed) {
            wrapDestroyed = &statGroup.addScalar(
                "wrapDestroyed",
                "un-replayed records destroyed by in-epoch wraps");
        }
        KINDLE_TRACE_INSTANT_ARGS(redo, redo, "redo.wrap",
                                  "capacity={} destroyedSoFar={}",
                                  maxRecords, wrapDestroyedCount);
        seq = 0;
    }
    if (wrapped) {
        ++wrapDestroyedCount;
        ++*wrapDestroyed;
    }
    rec.magic = RedoRecord::magicValue;
    rec.epoch = epoch;
    rec.seq = seq;
    rec.checksum = 0;
    rec.checksum = recordChecksum(rec);
    kmem.writeBufDurable(recordAddr(seq), &rec, sizeof(rec),
                         "redo.append_pre_fence");
    KINDLE_TRACE_INSTANT_ARGS(redo, redo, "redo.append",
                              "type={} seq={}",
                              static_cast<std::uint32_t>(rec.type),
                              seq);
    ++seq;
    ++appends;
    KINDLE_CRASH_SITE("redo.after_append");
    if (highWaterThreshold != 0 && seq == highWaterThreshold &&
        highWaterCb) {
        // Fires once per climb past the threshold; reset() re-arms by
        // pulling seq back to zero.
        highWaterCb();
    }
}

void
RedoLog::replay(const std::function<void(const RedoRecord &)> &fn)
{
    KINDLE_PROF_SCOPE(redo);
    for (std::uint64_t i = 0; i < seq; ++i) {
        RedoRecord rec{};
        // Non-temporal scan: the log is read once and not reused, so
        // it bypasses the caches.
        kmem.read64Uncached(recordAddr(i));
        kmem.mem().readData(recordAddr(i), &rec, sizeof(rec));
        ++replays;
        fn(rec);
    }
}

void
RedoLog::reset()
{
    if (highWaterThreshold != 0) {
        // Only instrumented under backpressure: a default-config run
        // resets on every checkpoint and an unconditional probe here
        // would perturb its fault.siteHits accounting.
        KINDLE_CRASH_SITE("redo.pre_truncate");
    }
    ++epoch;
    seq = 0;
    wrapped = false;
    ++resets;
    LogHeader hdr{LogHeader::magicValue, epoch, 0, 0};
    hdr.checksum = logHeaderChecksum(hdr);
    kmem.writeBufDurable(base, &hdr, sizeof(hdr));
}

RedoScan
RedoLog::recoverScan()
{
    RedoScan scan;
    LogHeader hdr{};
    kmem.readDurableBuf(base, &hdr, sizeof(hdr));
    if (hdr.magic != LogHeader::magicValue ||
        hdr.checksum != logHeaderChecksum(hdr)) {
        // Without a trustworthy epoch the whole log is unreadable;
        // recovery falls back to the last consistent checkpoint.
        scan.headerCorrupt = true;
        seq = 0;
        return scan;
    }
    epoch = hdr.epoch;
    for (std::uint64_t i = 0; i < maxRecords; ++i) {
        RedoRecord rec{};
        kmem.mem().readNvmDurable(recordAddr(i), &rec, sizeof(rec));
        ++scan.scanned;
        if (rec.magic != RedoRecord::magicValue) {
            // Zeroed (never written) or stale lines end the scan
            // cleanly; any other bit pattern is a corrupt tail.
            scan.truncatedTail = rec.magic != 0;
            break;
        }
        if (rec.epoch != epoch) {
            // A record from an earlier epoch: clean logical end.
            break;
        }
        if (rec.seq != i || rec.checksum != recordChecksum(rec)) {
            // In-epoch record that fails its own validation: a torn
            // append or scribbled line.  Stop before it.
            scan.truncatedTail = true;
            break;
        }
        scan.records.push_back(rec);
    }
    seq = scan.records.size();
    return scan;
}

std::vector<RedoRecord>
RedoLog::recoverRecords()
{
    RedoScan scan = recoverScan();
    kindle_assert(!scan.headerCorrupt,
                  "redo log header corrupt after crash");
    return std::move(scan.records);
}

RedoScan
RedoLog::audit(os::KernelMem &kmem, Addr base, std::uint64_t capacity)
{
    RedoScan scan;
    const std::uint64_t max_records =
        (capacity - lineSize) / sizeof(RedoRecord);

    LogHeader hdr{};
    kmem.mem().readNvmDurable(base, &hdr, sizeof(hdr));
    if (hdr.magic != LogHeader::magicValue ||
        hdr.checksum != logHeaderChecksum(hdr)) {
        scan.headerCorrupt = true;
        return scan;
    }
    for (std::uint64_t i = 0; i < max_records; ++i) {
        RedoRecord rec{};
        kmem.mem().readNvmDurable(base + lineSize +
                                      i * sizeof(RedoRecord),
                                  &rec, sizeof(rec));
        ++scan.scanned;
        if (rec.magic != RedoRecord::magicValue) {
            scan.truncatedTail = rec.magic != 0;
            break;
        }
        if (rec.epoch != hdr.epoch)
            break;
        if (rec.seq != i || rec.checksum != recordChecksum(rec)) {
            scan.truncatedTail = true;
            break;
        }
        scan.records.push_back(rec);
    }
    return scan;
}

} // namespace kindle::persist
