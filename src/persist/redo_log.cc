#include "persist/redo_log.hh"

#include "base/logging.hh"

namespace kindle::persist
{

namespace
{

/** Durable header occupying the first line of the region. */
struct LogHeader
{
    std::uint32_t magic;
    std::uint32_t epoch;

    static constexpr std::uint32_t magicValue = 0x4c474844;  // "LGHD"
};

} // namespace

RedoLog::RedoLog(os::KernelMem &kmem_arg, Addr base_arg,
                 std::uint64_t capacity, std::string name)
    : kmem(kmem_arg),
      base(base_arg),
      maxRecords((capacity - lineSize) / sizeof(RedoRecord)),
      statGroup(std::move(name), "redo log in NVM"),
      appends(statGroup.addScalar("appends", "records appended")),
      replays(statGroup.addScalar("replays", "records replayed")),
      resets(statGroup.addScalar("resets", "epoch bumps")),
      wraps(statGroup.addScalar("wraps", "in-epoch wraparounds"))
{
    kindle_assert(maxRecords > 0, "redo log region too small");
    // Establish the durable header (idempotent if already present).
    LogHeader hdr{};
    kmem.mem().readNvmDurable(base, &hdr, sizeof(hdr));
    if (hdr.magic == LogHeader::magicValue) {
        epoch = hdr.epoch;
    } else {
        hdr.magic = LogHeader::magicValue;
        hdr.epoch = epoch;
        kmem.writeBufDurable(base, &hdr, sizeof(hdr));
    }
}

void
RedoLog::append(RedoRecord rec)
{
    if (seq >= maxRecords) {
        // The region is sized so this only happens under extreme
        // checkpoint intervals; fold the tail forward.  Correctness is
        // preserved because the consistent copy is still intact; only
        // the replay-cost model loses the overwritten records.
        ++wraps;
        seq = 0;
    }
    rec.magic = RedoRecord::magicValue;
    rec.epoch = epoch;
    rec.seq = seq;
    kmem.writeBufDurable(recordAddr(seq), &rec, sizeof(rec));
    ++seq;
    ++appends;
}

void
RedoLog::replay(const std::function<void(const RedoRecord &)> &fn)
{
    for (std::uint64_t i = 0; i < seq; ++i) {
        RedoRecord rec{};
        // Non-temporal scan: the log is read once and not reused, so
        // it bypasses the caches.
        kmem.read64Uncached(recordAddr(i));
        kmem.mem().readData(recordAddr(i), &rec, sizeof(rec));
        ++replays;
        fn(rec);
    }
}

void
RedoLog::reset()
{
    ++epoch;
    seq = 0;
    ++resets;
    LogHeader hdr{LogHeader::magicValue, epoch};
    kmem.writeBufDurable(base, &hdr, sizeof(hdr));
}

std::vector<RedoRecord>
RedoLog::recoverRecords()
{
    LogHeader hdr{};
    kmem.readDurableBuf(base, &hdr, sizeof(hdr));
    kindle_assert(hdr.magic == LogHeader::magicValue,
                  "redo log header corrupt after crash");
    epoch = hdr.epoch;
    std::vector<RedoRecord> out;
    for (std::uint64_t i = 0; i < maxRecords; ++i) {
        RedoRecord rec{};
        kmem.mem().readNvmDurable(recordAddr(i), &rec, sizeof(rec));
        if (rec.magic != RedoRecord::magicValue || rec.epoch != epoch ||
            rec.seq != i) {
            break;
        }
        out.push_back(rec);
    }
    seq = out.size();
    return out;
}

} // namespace kindle::persist
