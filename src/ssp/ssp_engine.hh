/**
 * @file
 * Shadow Sub-Paging (SSP) prototype [31] on Kindle.
 *
 * SSP gives every tracked NVM virtual page two physical pages and
 * routes cache-line-granular modifications to the non-current copy.
 * The TLB is extended with the shadow frame and two bitmaps (current,
 * updated); MSRs communicate the tracked virtual range and the SSP
 * cache base to the translation hardware.  At each consistency
 * interval end the modified bitmaps are spilled to the SSP cache,
 * dirty lines are written back with clwb, and a commit record is
 * fenced out.  A background thread consolidates diverged page pairs
 * for entries that left the TLB.
 */

#ifndef KINDLE_SSP_SSP_ENGINE_HH
#define KINDLE_SSP_SSP_ENGINE_HH

#include <unordered_map>
#include <vector>

#include "cpu/core.hh"
#include "os/kernel.hh"
#include "ssp/ssp_cache.hh"

namespace kindle::ssp
{

/** SSP configuration. */
struct SspParams
{
    Tick consistencyInterval = 5 * oneMs;   ///< paper: 1/5/10 ms
    Tick consolidationInterval = oneMs;     ///< paper: fixed 1 ms
};

/** The engine: translation-hardware extension + OS support. */
class SspEngine : public cpu::CoreHooks, public os::OsEventListener
{
  public:
    SspEngine(const SspParams &params, os::Kernel &kernel);
    ~SspEngine() override;

    SspEngine(const SspEngine &) = delete;
    SspEngine &operator=(const SspEngine &) = delete;

    /** Attach hardware hooks and start the periodic machinery. */
    void start();

    /** Detach everything. */
    void stop();

    /** @name cpu::CoreHooks. */
    /// @{
    void onTlbFill(cpu::TlbEntry &entry, const cpu::Pte &leaf) override;
    void onDataWrite(cpu::TlbEntry &entry, Addr vaddr,
                     std::uint64_t size) override;
    /// @}

    /** @name os::OsEventListener. */
    /// @{
    void onFaseStart(os::Process &proc) override;
    void onFaseEnd(os::Process &proc) override;
    void onFrameUnmapped(os::Process &proc, Addr vaddr, Addr frame,
                         bool nvm) override;
    /// @}

    /** Force an interval-end commit now (checkpoint_end semantics). */
    void commitInterval();

    /** One consolidation pass over TLB-evicted entries. */
    void consolidate();

    SspCache &cache() { return sspCache; }
    bool active() const { return armed; }

    std::uint64_t shadowPagesAllocated() const
    {
        return static_cast<std::uint64_t>(shadowAllocs.value());
    }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    class IntervalEvent : public sim::Event
    {
      public:
        explicit IntervalEvent(SspEngine &e)
            : Event("sspInterval", Priority::ckpt), engine(e)
        {}
        void process() override;

      private:
        SspEngine &engine;
    };

    class ConsolidateEvent : public sim::Event
    {
      public:
        explicit ConsolidateEvent(SspEngine &e)
            : Event("sspConsolidate", Priority::consolidate), engine(e)
        {}
        void process() override;

      private:
        SspEngine &engine;
    };

    /** Is @p vaddr inside the MSR-programmed tracked range? */
    bool inTrackedRange(Pid pid, Addr vaddr) const;

    /** Program the MSRs from the process's NVM VMAs. */
    void armFor(os::Process &proc);

    void handleTlbEvict(const cpu::TlbEntry &entry);

    SspParams _params;
    os::Kernel &kernel;
    SspCache sspCache;

    IntervalEvent intervalEvent;
    ConsolidateEvent consolidateEvent;
    bool started = false;
    bool armed = false;
    Pid armedPid = 0;
    /** Per-core TLB evict-hook handles (index == CpuId). */
    std::vector<std::size_t> evictHookHandles;
    std::uint64_t commitSeq = 0;

    /** Host index of orig-frame → shadow-frame (authoritative copy
     *  lives in the NVM SSP cache entries). */
    std::unordered_map<Addr, Addr> shadowOf;

    statistics::StatGroup statGroup;
    statistics::Scalar &shadowAllocs;
    statistics::Scalar &intervalCommits;
    statistics::Scalar &linesFlushed;
    statistics::Scalar &bitmapSpills;
    statistics::Scalar &consolidations;
    statistics::Scalar &pagesConsolidated;
    statistics::Scalar &consolidateTicks;
    statistics::Scalar &commitTicks;
    statistics::Scalar &metadataInspections;
    /** Registered lazily: only exists once an alloc actually fails. */
    statistics::Scalar *shadowAllocFailures = nullptr;
};

} // namespace kindle::ssp

#endif // KINDLE_SSP_SSP_ENGINE_HH
