#include "ssp/ssp_cache.hh"

#include "base/logging.hh"

namespace kindle::ssp
{

SspCache::SspCache(os::KernelMem &kmem_arg,
                   const os::NvmLayout &layout)
    : kmem(kmem_arg),
      regionBase(layout.sspCache),
      capacity(layout.sspCacheBytes / sizeof(SspCacheEntry)),
      frameBase(layout.userPool),
      statGroup("sspCache", "SSP metadata cache region"),
      reads(statGroup.addScalar("reads", "metadata entries read")),
      writes(statGroup.addScalar("writes", "metadata entries written"))
{
    kindle_assert(capacity > 0, "SSP cache region too small");
}

Addr
SspCache::entryAddr(Addr frame) const
{
    kindle_assert(frame >= frameBase && isAligned(frame, pageSize),
                  "SSP cache lookup for non-pool frame {}", frame);
    const std::uint64_t index = (frame - frameBase) >> pageShift;
    kindle_assert(index < capacity, "SSP cache index out of range");
    return regionBase + index * sizeof(SspCacheEntry);
}

SspCacheEntry
SspCache::read(Addr frame)
{
    ++reads;
    SspCacheEntry entry;
    const Addr addr = entryAddr(frame);
    // Metadata is cacheable: hot entries are served by the hierarchy
    // (this is the fill path of the extended translation hardware).
    kmem.readBuf(addr, &entry, sizeof(entry));
    return entry;
}

void
SspCache::write(Addr frame, const SspCacheEntry &entry)
{
    ++writes;
    // Cached store; durability is established by the clwb+fence at
    // the enclosing consistency-interval commit.
    kmem.writeBuf(entryAddr(frame), &entry, sizeof(entry));
    if (entry.evicted())
        evictedSet.insert(frame);
}

void
SspCache::flushEntry(Addr frame)
{
    kmem.clwb(entryAddr(frame));
}

void
SspCache::mergeBits(Addr frame, std::uint64_t updated_bits,
                    bool mark_evicted)
{
    SspCacheEntry entry = read(frame);
    kindle_assert(entry.allocated(),
                  "bitmap spill to an unallocated SSP entry");
    entry.pendingBits |= updated_bits;
    // Committed lines flip which physical page holds the latest copy.
    entry.currentBits ^= updated_bits;
    if (mark_evicted)
        entry.flags |= SspCacheEntry::flagEvicted;
    write(frame, entry);
}

void
SspCache::clearEvicted(Addr frame)
{
    SspCacheEntry entry = read(frame);
    entry.flags &= ~SspCacheEntry::flagEvicted;
    entry.pendingBits = 0;
    write(frame, entry);
    evictedSet.erase(frame);
}

} // namespace kindle::ssp
