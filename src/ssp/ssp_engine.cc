#include "ssp/ssp_engine.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "base/trace_flags.hh"

namespace kindle::ssp
{

void
SspEngine::IntervalEvent::process()
{
    engine.commitInterval();
    if (engine.started) {
        engine.kernel.simulation().eventq().schedule(
            this, engine.kernel.simulation().now() +
                      engine._params.consistencyInterval);
    }
}

void
SspEngine::ConsolidateEvent::process()
{
    engine.consolidate();
    if (engine.started) {
        engine.kernel.simulation().eventq().schedule(
            this, engine.kernel.simulation().now() +
                      engine._params.consolidationInterval);
    }
}

SspEngine::SspEngine(const SspParams &params, os::Kernel &kernel_arg)
    : _params(params),
      kernel(kernel_arg),
      sspCache(kernel_arg.kmem(), kernel_arg.nvmLayout()),
      intervalEvent(*this),
      consolidateEvent(*this),
      statGroup("ssp", "shadow sub-paging engine"),
      shadowAllocs(statGroup.addScalar("shadowPages",
                                       "shadow pages allocated")),
      intervalCommits(statGroup.addScalar(
          "intervalCommits", "consistency intervals committed")),
      linesFlushed(statGroup.addScalar("linesFlushed",
                                       "data lines clwb'd at commits")),
      bitmapSpills(statGroup.addScalar(
          "bitmapSpills", "TLB bitmap spills to the SSP cache")),
      consolidations(statGroup.addScalar(
          "consolidations", "consolidation thread invocations")),
      pagesConsolidated(statGroup.addScalar(
          "pagesConsolidated", "page pairs merged")),
      consolidateTicks(statGroup.addScalar(
          "consolidateTicks", "time spent consolidating")),
      commitTicks(statGroup.addScalar("commitTicks",
                                      "time spent in commits")),
      metadataInspections(statGroup.addScalar(
          "metadataInspections",
          "SSP cache entries inspected at interval ends"))
{
    statGroup.addChild(sspCache.stats());
}

SspEngine::~SspEngine()
{
    stop();
}

void
SspEngine::start()
{
    if (started)
        return;
    started = true;
    // Every core's translation hardware participates: hooks, evict
    // callbacks and the SSP MSRs are replicated per core.
    for (CpuId c = 0; c < kernel.numCores(); ++c) {
        cpu::Core &core = kernel.core(c);
        core.addHooks(this);
        evictHookHandles.push_back(core.tlb().addEvictHook(
            [this](const cpu::TlbEntry &e) { handleTlbEvict(e); }));
    }
    kernel.addListener(this);
    auto &sim = kernel.simulation();
    sim.eventq().schedule(&intervalEvent,
                          sim.now() + _params.consistencyInterval);
    sim.eventq().schedule(&consolidateEvent,
                          sim.now() + _params.consolidationInterval);
    // Publish the SSP cache base to the translation hardware.
    for (CpuId c = 0; c < kernel.numCores(); ++c) {
        kernel.core(c).msrs().write(cpu::MsrId::sspCacheBase,
                                    sspCache.base());
    }
}

void
SspEngine::stop()
{
    if (!started)
        return;
    started = false;
    armed = false;
    for (CpuId c = 0; c < kernel.numCores(); ++c) {
        kernel.core(c).removeHooks(this);
        kernel.core(c).tlb().removeEvictHook(evictHookHandles[c]);
    }
    evictHookHandles.clear();
    kernel.removeListener(this);
    auto &eq = kernel.simulation().eventq();
    eq.deschedule(&intervalEvent);
    eq.deschedule(&consolidateEvent);
}

bool
SspEngine::inTrackedRange(Pid pid, Addr vaddr) const
{
    if (!armed || pid != armedPid)
        return false;
    // The SSP MSRs are written identically on every core; read the
    // canonical copy on core 0.
    const auto &msrs =
        const_cast<os::Kernel &>(kernel).core(0).msrs();
    return msrs.read(cpu::MsrId::sspEnable) != 0 &&
           vaddr >= msrs.read(cpu::MsrId::sspNvmRangeStart) &&
           vaddr < msrs.read(cpu::MsrId::sspNvmRangeEnd);
}

void
SspEngine::armFor(os::Process &proc)
{
    // Derive the tracked virtual range from the process's NVM VMAs.
    Addr lo = invalidAddr;
    Addr hi = 0;
    proc.aspace.forEach([&](const os::Vma &vma) {
        if (!vma.nvm)
            return;
        lo = std::min(lo, vma.range.start());
        hi = std::max(hi, vma.range.end());
    });
    if (lo >= hi) {
        for (CpuId c = 0; c < kernel.numCores(); ++c)
            kernel.core(c).msrs().write(cpu::MsrId::sspEnable, 0);
        armed = false;
        return;
    }
    for (CpuId c = 0; c < kernel.numCores(); ++c) {
        auto &msrs = kernel.core(c).msrs();
        msrs.write(cpu::MsrId::sspNvmRangeStart, lo);
        msrs.write(cpu::MsrId::sspNvmRangeEnd, hi);
        msrs.write(cpu::MsrId::sspEnable, 1);
    }
    armed = true;
    armedPid = proc.pid;
}

void
SspEngine::onFaseStart(os::Process &proc)
{
    armFor(proc);
    // checkpoint_start enables the custom translation hardware; every
    // TLB is shot down so tracked pages refill with the SSP extension
    // fields populated on whichever core touches them.
    if (armed)
        kernel.shootdownFlushAll();
}

void
SspEngine::onFaseEnd(os::Process &proc)
{
    (void)proc;
    // checkpoint_end: commit the open interval, then disarm.
    commitInterval();
    for (CpuId c = 0; c < kernel.numCores(); ++c)
        kernel.core(c).msrs().write(cpu::MsrId::sspEnable, 0);
    armed = false;
}

void
SspEngine::onTlbFill(cpu::TlbEntry &entry, const cpu::Pte &leaf)
{
    if (!leaf.nvmBacked() ||
        !inTrackedRange(entry.pid, entry.vpn << pageShift)) {
        return;
    }
    entry.sspTracked = true;

    const Addr frame = leaf.frameAddr();
    auto it = shadowOf.find(frame);
    if (it == shadowOf.end()) {
        // First touch: allocate the supplementary physical page in the
        // page-allocation routine and record the pair in the SSP cache.
        const Addr shadow = kernel.nvmAllocator().tryAlloc();
        if (shadow == invalidAddr) {
            // NVM zone exhausted: the page runs untracked this FASE
            // (writes go straight to the current frame, exactly the
            // semantics of SSP having no shadow to give it).
            entry.sspTracked = false;
            if (!shadowAllocFailures) {
                shadowAllocFailures = &statGroup.addScalar(
                    "shadowAllocFailures",
                    "pages left untracked for lack of a shadow frame");
            }
            ++*shadowAllocFailures;
            return;
        }
        ++shadowAllocs;
        SspCacheEntry meta;
        meta.magic = SspCacheEntry::magicValue;
        meta.flags = SspCacheEntry::flagAllocated;
        meta.origFrame = frame;
        meta.shadowFrame = shadow;
        meta.vpn = entry.vpn;
        meta.pid = entry.pid;
        sspCache.write(frame, meta);
        it = shadowOf.emplace(frame, shadow).first;
        entry.currentBits = 0;
    } else {
        // Hardware fill: fetch the bitmap fields from the SSP cache.
        const SspCacheEntry meta = sspCache.read(frame);
        entry.currentBits = meta.currentBits;
    }
    entry.shadowPfn = it->second >> pageShift;
    entry.updatedBits = 0;
}

void
SspEngine::onDataWrite(cpu::TlbEntry &entry, Addr vaddr,
                       std::uint64_t size)
{
    if (!entry.sspTracked)
        return;
    // Mark every covered line as updated; the cache controller routes
    // these lines to the non-current physical page.
    const unsigned first =
        static_cast<unsigned>((vaddr & (pageSize - 1)) >> lineShift);
    const unsigned last = static_cast<unsigned>(
        ((vaddr + size - 1) & (pageSize - 1)) >> lineShift);
    for (unsigned i = first; i <= last && i < linesPerPage; ++i)
        entry.updatedBits = setBit(entry.updatedBits, i);
}

void
SspEngine::handleTlbEvict(const cpu::TlbEntry &entry)
{
    if (!entry.sspTracked || entry.updatedBits == 0)
        return;
    // Translation hardware generates a memory request to spill the
    // bitmap and mark the entry TLB-evicted.
    ++bitmapSpills;
    sspCache.mergeBits(entry.pfn << pageShift, entry.updatedBits,
                       /*mark_evicted=*/true);
}

void
SspEngine::commitInterval()
{
    auto &sim = kernel.simulation();
    const Tick t0 = sim.now();
    ++intervalCommits;

    auto &kmem = kernel.kmem();

    // Metadata inspection: checkpoint_end walks the SSP cache entries
    // of every tracked page to decide what must be written back, and
    // flushes each inspected metadata line so the SSP cache itself is
    // durable at the commit point (the paper: "the number of metadata
    // inspections and clwb calls ... reduce with a wider consistency
    // interval").
    for (const auto &[frame, shadow] : shadowOf) {
        (void)shadow;
        const Addr entry_addr = sspCache.entryAddr(frame);
        // The kernel-initiated inspection streams the metadata region
        // non-temporally (it must observe device state, not possibly
        // stale cached copies), then writes back whatever the caches
        // still hold for the line.
        kmem.read64Uncached(entry_addr);
        kmem.clwb(entry_addr);
        ++metadataInspections;
    }

    std::uint64_t flushed = 0;
    for (CpuId c = 0; c < kernel.numCores(); ++c) {
        kernel.core(c).tlb().forEachValid(
            [&](cpu::TlbEntry &entry) {
                if (!entry.sspTracked || entry.updatedBits == 0)
                    return;
                const Addr page = entry.pfn << pageShift;
                ++bitmapSpills;
                sspCache.mergeBits(page, entry.updatedBits,
                                   /*mark_evicted=*/false);
                // clwb every modified data line.
                for (unsigned i = 0; i < linesPerPage; ++i) {
                    if (bit(entry.updatedBits, i)) {
                        kmem.clwb(page + i * lineSize);
                        ++flushed;
                    }
                }
                entry.currentBits ^= entry.updatedBits;
                entry.updatedBits = 0;
            });
    }
    kmem.sfence();

    // Durable commit record at the tail of the SSP cache region.
    const os::NvmLayout &layout = kernel.nvmLayout();
    const Addr commit_addr =
        layout.sspCache + layout.sspCacheBytes - lineSize;
    struct CommitRecord
    {
        std::uint64_t seq;
        std::uint64_t when;
        std::uint8_t pad[48];
    } rec{++commitSeq, sim.now(), {}};
    kmem.writeBufDurable(commit_addr, &rec, sizeof(rec));

    linesFlushed += static_cast<double>(flushed);
    commitTicks += static_cast<double>(sim.now() - t0);
    trace::dprintf(trace::Flag::ssp, sim.now(),
                   "interval commit: {} lines flushed", flushed);
}

void
SspEngine::consolidate()
{
    auto &sim = kernel.simulation();
    const Tick t0 = sim.now();
    ++consolidations;

    // Snapshot: entries marked evicted at this instant.
    const std::vector<Addr> frames(sspCache.evictedFrames().begin(),
                                   sspCache.evictedFrames().end());
    for (Addr frame : frames) {
        const SspCacheEntry meta = sspCache.read(frame);
        if (!meta.evicted())
            continue;
        const unsigned diverged = popCount(meta.pendingBits);
        if (diverged > 0) {
            // Merge: stream the diverged lines from the latest copy to
            // the stale copy so the pair converges.
            const std::uint64_t bytes =
                std::uint64_t(diverged) * lineSize;
            auto &mem = kernel.kmem().mem();
            sim.bump(mem.submit(
                {mem::MemCmd::bulkRead, meta.shadowFrame, bytes},
                sim.now()));
            sim.bump(mem.submit(
                {mem::MemCmd::bulkWrite, meta.origFrame, bytes},
                sim.now()));
        }
        sspCache.clearEvicted(frame);
        ++pagesConsolidated;
    }

    consolidateTicks += static_cast<double>(sim.now() - t0);
}

void
SspEngine::onFrameUnmapped(os::Process &proc, Addr vaddr, Addr frame,
                           bool nvm)
{
    (void)proc;
    (void)vaddr;
    if (!nvm)
        return;
    const auto it = shadowOf.find(frame);
    if (it == shadowOf.end())
        return;
    // Release the supplementary page and retire the metadata entry.
    kernel.nvmAllocator().free(it->second);
    SspCacheEntry dead;
    sspCache.write(frame, dead);
    sspCache.clearEvicted(frame);
    shadowOf.erase(it);
}

} // namespace kindle::ssp
