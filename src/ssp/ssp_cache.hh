/**
 * @file
 * The SSP cache: the NVM-resident metadata area tracking, per tracked
 * NVM page, the original/shadow physical pages and the current/updated
 * cache-line bitmaps (paper §III-B).
 *
 * Entries are indexed by the NVM frame number of the original page.
 * The area's base address is communicated to the translation hardware
 * through an MSR, mirroring the prototype's design.
 */

#ifndef KINDLE_SSP_SSP_CACHE_HH
#define KINDLE_SSP_SSP_CACHE_HH

#include <cstdint>
#include <unordered_set>

#include "base/stats.hh"
#include "os/kernel_mem.hh"
#include "os/nvm_layout.hh"

namespace kindle::ssp
{

/** One 64-byte SSP cache entry. */
struct SspCacheEntry
{
    std::uint32_t magic = 0;
    std::uint32_t flags = 0;
    std::uint64_t origFrame = 0;
    std::uint64_t shadowFrame = 0;
    std::uint64_t currentBits = 0;  ///< which copy holds each line
    std::uint64_t pendingBits = 0;  ///< lines awaiting consolidation
    std::uint64_t vpn = 0;
    std::uint32_t pid = 0;
    std::uint32_t pad = 0;
    std::uint64_t pad2 = 0;

    static constexpr std::uint32_t magicValue = 0x53535043;  // "SSPC"
    static constexpr std::uint32_t flagAllocated = 1u << 0;
    static constexpr std::uint32_t flagEvicted = 1u << 1;

    bool allocated() const { return flags & flagAllocated; }
    bool evicted() const { return flags & flagEvicted; }
};

static_assert(sizeof(SspCacheEntry) == 64);

/** Accessor over the metadata region. */
class SspCache
{
  public:
    SspCache(os::KernelMem &kmem, const os::NvmLayout &layout);

    /** Base physical address (programmed into the MSR). */
    Addr base() const { return regionBase; }

    /** Entry address for the page at NVM frame @p frame. */
    Addr entryAddr(Addr frame) const;

    /** Timed read of one entry. */
    SspCacheEntry read(Addr frame);

    /** Timed durable write of one entry. */
    void write(Addr frame, const SspCacheEntry &entry);

    /**
     * Hardware-side spill: merge @p updated_bits into the entry and
     * optionally mark it TLB-evicted.  One memory round trip.
     */
    void mergeBits(Addr frame, std::uint64_t updated_bits,
                   bool mark_evicted);

    /** clwb the entry's line (interval-commit durability). */
    void flushEntry(Addr frame);

    /** Frames whose entries carry the evicted flag (dirty list). */
    const std::unordered_set<Addr> &evictedFrames() const
    {
        return evictedSet;
    }

    /** Clear the evicted flag after consolidation. */
    void clearEvicted(Addr frame);

    /** Drop every host-side index (fresh boot). */
    void resetIndex() { evictedSet.clear(); }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    os::KernelMem &kmem;
    Addr regionBase;
    std::uint64_t capacity;
    Addr frameBase;  ///< first NVM user frame (index origin)

    /**
     * Host-side index of entries with the evicted flag set, standing
     * in for the dirty-entry queue a real implementation would keep;
     * the authoritative flags live in the NVM entries themselves.
     */
    std::unordered_set<Addr> evictedSet;

    statistics::StatGroup statGroup;
    statistics::Scalar &reads;
    statistics::Scalar &writes;
};

} // namespace kindle::ssp

#endif // KINDLE_SSP_SSP_CACHE_HH
