#include "fleet/fleet.hh"

#include "base/logging.hh"
#include "base/rand.hh"

namespace kindle::fleet
{

namespace
{

/** Every tenant maps its heap here — address spaces are private, so
 *  the fleet shares one canonical layout (mirrors micro::scriptBase). */
constexpr Addr tenantHeapBase = Addr(0x400000000);

/** YCSB-B read fraction (95/5 is YCSB-B proper; the fleet runs the
 *  71/29 update-heavier mix so checkpoints always find dirty NVM
 *  state to persist). */
constexpr double readFraction = 0.71;

/** Substream tags under a tenant's seed. */
enum : std::uint64_t
{
    streamSizeClass = 0,
    streamRequests = 1,
    streamKeys = 2,
};

} // namespace

const char *
arrivalName(Arrival a)
{
    return a == Arrival::poisson ? "poisson" : "bursty";
}

TenantSpec
makeTenantSpec(const FleetParams &params, unsigned ordinal)
{
    TenantSpec spec;
    spec.id = ordinal;
    spec.seed = rand::deriveSeed(params.seed, ordinal);

    rand::WeightedPicker classes({params.weightSmall,
                                  params.weightMedium,
                                  params.weightLarge});
    Random draw(rand::deriveSeed(spec.seed, streamSizeClass));
    switch (classes.pick(draw)) {
      case 0: spec.heapPages = params.smallPages; break;
      case 1: spec.heapPages = params.mediumPages; break;
      default: spec.heapPages = params.largePages; break;
    }
    kindle_assert(spec.heapPages > 0, "tenant with an empty heap");
    return spec;
}

TenantWorkload::TenantWorkload(const FleetParams &params_arg,
                               TenantSpec spec, FleetCounters *counters)
    : params(params_arg),
      _spec(spec),
      counters(counters),
      requestsLeft(params_arg.requestsPerTenant),
      rng(rand::deriveSeed(spec.seed, streamRequests)),
      keys(spec.heapPages, params_arg.zipfTheta,
           rand::deriveSeed(spec.seed, streamKeys))
{
}

std::uint64_t
TenantWorkload::thinkCycles()
{
    double mean = static_cast<double>(params.meanThinkCycles);
    if (params.arrival == Arrival::bursty) {
        if (burstLeft == 0) {
            burstHot = !burstHot;
            burstLeft = static_cast<unsigned>(rng.range(4, 12));
        }
        --burstLeft;
        // A hot phase fires requests back to back; an idle phase
        // sleeps long enough that checkpoints catch the tenant
        // off-CPU — the two regimes that bracket consolidation.
        mean *= burstHot ? 0.125 : 4.0;
    }
    const double cycles = rand::expInterval(rng, mean);
    return cycles < 1.0 ? 1 : static_cast<std::uint64_t>(cycles);
}

bool
TenantWorkload::next(cpu::Op &op)
{
    switch (phase) {
      case Phase::mapHeap:
        op.kind = cpu::Op::Kind::mmap;
        op.addr = tenantHeapBase;
        op.size = _spec.heapBytes();
        op.flags = cpu::mapNvm | cpu::mapFixed;
        phase = requestsLeft > 0 ? Phase::think : Phase::exited;
        return true;

      case Phase::think:
        op.kind = cpu::Op::Kind::compute;
        op.addr = 0;
        op.size = thinkCycles();
        op.flags = 0;
        // Pick the request now so the think draw and the key draw
        // stay ordered even if the scheduler preempts in between.
        keyAddr = tenantHeapBase + keys.next() * pageSize;
        phase = Phase::access;
        return true;

      case Phase::access: {
        const bool is_read = rng.chance(readFraction);
        op.kind = is_read ? cpu::Op::Kind::read
                          : cpu::Op::Kind::write;
        op.addr = keyAddr;
        op.size = 8;
        op.flags = 0;
        if (counters) {
            ++counters->requests;
            ++(is_read ? counters->reads : counters->writes);
        }
        --requestsLeft;
        phase = requestsLeft > 0 ? Phase::think : Phase::exited;
        return true;
      }

      case Phase::exited:
        op.kind = cpu::Op::Kind::exit;
        op.addr = 0;
        op.size = 0;
        op.flags = 0;
        phase = Phase::done;
        return true;

      case Phase::done:
        return false;
    }
    return false;
}

std::unique_ptr<cpu::OpStream>
makeTenant(const FleetParams &params, unsigned ordinal,
           FleetCounters *counters)
{
    return std::make_unique<TenantWorkload>(
        params, makeTenantSpec(params, ordinal), counters);
}

std::string
tenantName(unsigned ordinal)
{
    return "tenant" + std::to_string(ordinal);
}

} // namespace kindle::fleet
