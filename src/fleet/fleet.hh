/**
 * @file
 * Multi-tenant server-fleet workload generator.
 *
 * Models a consolidated server running a fleet of small key-value
 * tenant processes (the YCSB shape): every tenant owns a private
 * MAP_NVM heap sized by a skewed size-class draw, issues open-loop
 * requests whose think times follow an exponential (Poisson-arrival)
 * or bursty distribution, and touches heap pages through a per-tenant
 * Zipfian key popularity curve.  Tenants exit after a fixed request
 * budget, so a churning fleet continuously destroys and (via the
 * scenario driver) respawns processes through the crash-consistent
 * exitProcess / spawn paths while periodic checkpoints sweep the
 * whole population — the checkpoint-storm regime the paper's
 * multiprogrammed experiments point toward but never scale.
 *
 * Everything is derived deterministically from one fleet seed via
 * splitmix64 substream derivation (base/rand.hh): tenant i of seed S
 * behaves identically no matter how many cores run the fleet or in
 * which order processes are scheduled.
 */

#ifndef KINDLE_FLEET_FLEET_HH
#define KINDLE_FLEET_FLEET_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/random.hh"
#include "base/types.hh"
#include "cpu/op.hh"

namespace kindle::fleet
{

/** Inter-request arrival process shaping tenant think times. */
enum class Arrival : std::uint8_t
{
    poisson,  ///< exponential think times (open-loop Poisson)
    bursty,   ///< Poisson modulated by on/off burst phases
};

const char *arrivalName(Arrival a);

/** Fleet-wide configuration. */
struct FleetParams
{
    /** Number of tenant processes alive at steady state. */
    unsigned tenants = 1024;

    /** Master seed; every per-tenant stream derives from it. */
    std::uint64_t seed = 42;

    /** Zipfian skew of each tenant's key popularity (YCSB 0.99). */
    double zipfTheta = 0.99;

    /** Arrival process shaping think times. */
    Arrival arrival = Arrival::poisson;

    /** Requests a tenant serves before exiting. */
    unsigned requestsPerTenant = 24;

    /** Mean think cycles between requests (Poisson mean). */
    std::uint64_t meanThinkCycles = 20000;

    /** Replacement tenants the churn driver spawns after exits
     *  (0 = a single generation, no churn). */
    unsigned churnSpawns = 0;

    /**
     * Size-class weights (small/medium/large heaps).  The defaults
     * give the long-tailed fleet mix: most tenants are small, a few
     * are hundred-MiB-class heavies that dominate checkpoint cost.
     */
    double weightSmall = 0.80;
    double weightMedium = 0.15;
    double weightLarge = 0.05;

    /** Heap pages per size class. */
    std::uint64_t smallPages = 64;
    std::uint64_t mediumPages = 256;
    std::uint64_t largePages = 1024;
};

/** One tenant's derived identity (deterministic in params.seed). */
struct TenantSpec
{
    unsigned id = 0;            ///< fleet-unique ordinal
    std::uint64_t seed = 0;     ///< substream seed for all draws
    std::uint64_t heapPages = 0;
    std::uint64_t heapBytes() const { return heapPages * pageSize; }
};

/** Shared run accounting, owned by the scenario driver. */
struct FleetCounters
{
    std::uint64_t requests = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

/**
 * Derive tenant @p ordinal of the fleet: the size class comes from a
 * weighted draw on a substream of params.seed, so the fleet mix is a
 * pure function of (seed, ordinal) — churn replacements get fresh
 * ordinals and therefore fresh, reproducible identities.
 */
TenantSpec makeTenantSpec(const FleetParams &params, unsigned ordinal);

/**
 * A tenant process program: one lazy OpStream (requests are generated
 * on demand, so a million-tenant fleet holds no pre-built scripts).
 *
 *   mmap(MAP_NVM) heap
 *   repeat requestsPerTenant times:
 *     compute(think)            think ~ arrival process
 *     read/write 8B at a Zipfian-popular heap page (~71/29 YCSB-B)
 *   exit                        → crash-consistent teardown
 */
class TenantWorkload : public cpu::OpStream
{
  public:
    TenantWorkload(const FleetParams &params, TenantSpec spec,
                   FleetCounters *counters = nullptr);

    bool next(cpu::Op &op) override;

    const TenantSpec &spec() const { return _spec; }

  private:
    /** Think cycles before the next request (arrival process). */
    std::uint64_t thinkCycles();

    enum class Phase : std::uint8_t
    {
        mapHeap,
        think,
        access,
        exited,
        done,
    };

    FleetParams params;
    TenantSpec _spec;
    FleetCounters *counters;

    Phase phase = Phase::mapHeap;
    unsigned requestsLeft;
    Random rng;             ///< think times, read/write mix, bursts
    ZipfianGenerator keys;  ///< page popularity
    Addr keyAddr = 0;       ///< address picked for the pending access

    /** Bursty modulation state: requests left in the current phase
     *  and whether the phase is hot (short thinks) or idle (long). */
    unsigned burstLeft = 0;
    bool burstHot = false;
};

/** Spawn-time helper: program factory + canonical tenant name. */
std::unique_ptr<cpu::OpStream>
makeTenant(const FleetParams &params, unsigned ordinal,
           FleetCounters *counters = nullptr);

std::string tenantName(unsigned ordinal);

} // namespace kindle::fleet

#endif // KINDLE_FLEET_FLEET_HH
