#include "prep/trace.hh"

namespace kindle::prep
{

TraceImage
TraceImage::capture(TraceSource &src)
{
    src.reset();
    std::vector<TraceRecord> records;
    TraceRecord rec;
    while (src.next(rec))
        records.push_back(rec);
    src.reset();
    return TraceImage(src.name(), src.layout(), std::move(records));
}

TraceStats
TraceImage::stats() const
{
    TraceStats s;
    for (const auto &r : _records) {
        ++s.totalOps;
        if (r.op == TraceOp::read)
            ++s.reads;
        else
            ++s.writes;
    }
    return s;
}

TraceStats
computeStats(TraceSource &src)
{
    src.reset();
    TraceStats s;
    TraceRecord rec;
    while (src.next(rec)) {
        ++s.totalOps;
        if (rec.op == TraceOp::read)
            ++s.reads;
        else
            ++s.writes;
    }
    src.reset();
    return s;
}

} // namespace kindle::prep
