/**
 * @file
 * Synthetic workload tracers standing in for the Pin-traced
 * applications of the paper's Table II.
 *
 * Each generator produces a deterministic (period, offset, operation,
 * size, area) stream whose op count, read/write mix and locality
 * character match the corresponding benchmark:
 *
 *  - Gapbs_pr   (GAP PageRank):  77% reads / 23% writes.  Sequential
 *    sweeps over per-node arrays plus power-law-skewed rank reads of
 *    neighbour nodes — a concentrated hot set.
 *  - G500_sssp  (Graph500 SSSP): 68% reads / 32% writes.  Scattered
 *    adjacency reads over a large footprint with frontier/distance
 *    updates — little reuse, many distinct pages.
 *  - Ycsb_mem   (YCSB in-memory): 71% reads / 29% writes.  Zipfian
 *    key selection over a record store — a skewed hot set with a long
 *    tail.
 *
 * Multi-threaded stack capture (the paper uses SniP) is represented
 * by per-thread stack areas receiving a small fraction of accesses.
 */

#ifndef KINDLE_PREP_WORKLOADS_HH
#define KINDLE_PREP_WORKLOADS_HH

#include <memory>

#include "base/random.hh"
#include "prep/trace.hh"

namespace kindle::prep
{

/** Common generator knobs. */
struct WorkloadParams
{
    std::uint64_t ops = 10000000;  ///< paper: 10 M per benchmark
    std::uint64_t seed = 42;
    unsigned threads = 4;          ///< stack areas (SniP capture)
    /**
     * Footprint divisor for quick tests: 1 = paper-scale footprints
     * (~100-250 MiB), larger values shrink every area proportionally.
     */
    unsigned scaleDown = 1;
};

/** Read KINDLE_OPS from the environment (default @p fallback). */
std::uint64_t opsFromEnv(std::uint64_t fallback = 1000000);

/** Identifier for the three standard benchmarks. */
enum class Benchmark
{
    gapbsPr,
    g500Sssp,
    ycsbMem,
};

const char *benchmarkName(Benchmark b);

/** Instantiate the generator for @p bench. */
std::unique_ptr<TraceSource> makeWorkload(Benchmark bench,
                                          const WorkloadParams &params);

/** GAP PageRank-like tracer. */
class GapbsPrTrace : public TraceSource
{
  public:
    explicit GapbsPrTrace(const WorkloadParams &params);

    const MemoryLayout &layout() const override { return _layout; }
    const std::string &name() const override { return _name; }
    bool next(TraceRecord &rec) override;
    void reset() override;

  private:
    void refillNode();

    WorkloadParams _params;
    std::string _name = "Gapbs_pr";
    MemoryLayout _layout;
    std::uint64_t nodes;
    Random rng;
    ZipfianGenerator hotNodes;
    std::uint64_t emitted = 0;
    std::uint64_t curNode = 0;
    std::vector<TraceRecord> queue;  ///< ops for the current node
    std::size_t queueIdx = 0;
    std::uint64_t clockNs = 0;
};

/** Graph500 SSSP-like tracer. */
class G500SsspTrace : public TraceSource
{
  public:
    explicit G500SsspTrace(const WorkloadParams &params);

    const MemoryLayout &layout() const override { return _layout; }
    const std::string &name() const override { return _name; }
    bool next(TraceRecord &rec) override;
    void reset() override;

  private:
    void refillStep();

    WorkloadParams _params;
    std::string _name = "G500_sssp";
    MemoryLayout _layout;
    std::uint64_t adjBytes;
    std::uint64_t distEntries;
    Random rng;
    std::uint64_t emitted = 0;
    std::uint64_t frontierHead = 0;
    std::uint64_t frontierTail = 0;
    std::vector<TraceRecord> queue;
    std::size_t queueIdx = 0;
    std::uint64_t clockNs = 0;
};

/** YCSB workload-A-like in-memory KV tracer. */
class YcsbMemTrace : public TraceSource
{
  public:
    explicit YcsbMemTrace(const WorkloadParams &params);

    const MemoryLayout &layout() const override { return _layout; }
    const std::string &name() const override { return _name; }
    bool next(TraceRecord &rec) override;
    void reset() override;

  private:
    void refillOp();

    WorkloadParams _params;
    std::string _name = "Ycsb_mem";
    MemoryLayout _layout;
    std::uint64_t records;
    std::uint64_t recordBytes;
    Random rng;
    std::unique_ptr<ZipfianGenerator> keys;
    std::uint64_t emitted = 0;
    std::vector<TraceRecord> queue;
    std::size_t queueIdx = 0;
    std::uint64_t clockNs = 0;
};

} // namespace kindle::prep

#endif // KINDLE_PREP_WORKLOADS_HH
