#include "prep/workloads.hh"

#include <cstdlib>

#include "base/logging.hh"

namespace kindle::prep
{

namespace
{

/** Per-thread stack area size. */
constexpr std::uint64_t stackBytes = 64 * oneKiB;

/** Fraction of accesses hitting thread stacks. */
constexpr double stackFraction = 0.01;

/** Append the per-thread stack areas to @p layout. */
void
addStacks(MemoryLayout &layout, unsigned threads,
          std::uint32_t first_id)
{
    for (unsigned t = 0; t < threads; ++t) {
        AreaInfo a;
        a.areaId = first_id + t;
        a.kind = AreaKind::stack;
        a.sizeBytes = stackBytes;
        a.name = "stack_t" + std::to_string(t);
        layout.areas.push_back(a);
    }
}

/** Emit an occasional stack access (returns true if one was made). */
bool
maybeStackOp(Random &rng, unsigned threads, std::uint32_t first_id,
             std::uint64_t clock_ns, std::vector<TraceRecord> &queue)
{
    if (!rng.chance(stackFraction))
        return false;
    TraceRecord rec;
    rec.period = clock_ns;
    rec.areaId = first_id + static_cast<std::uint32_t>(
                                rng.uniform(threads));
    rec.offset = rng.uniform(stackBytes - 8) & ~std::uint64_t(7);
    rec.op = rng.chance(0.5) ? TraceOp::read : TraceOp::write;
    rec.size = 8;
    queue.push_back(rec);
    return true;
}

} // namespace

std::uint64_t
opsFromEnv(std::uint64_t fallback)
{
    if (const char *env = std::getenv("KINDLE_OPS")) {
        const std::uint64_t v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return fallback;
}

const char *
benchmarkName(Benchmark b)
{
    switch (b) {
      case Benchmark::gapbsPr:
        return "Gapbs_pr";
      case Benchmark::g500Sssp:
        return "G500_sssp";
      case Benchmark::ycsbMem:
        return "Ycsb_mem";
    }
    return "?";
}

std::unique_ptr<TraceSource>
makeWorkload(Benchmark bench, const WorkloadParams &params)
{
    switch (bench) {
      case Benchmark::gapbsPr:
        return std::make_unique<GapbsPrTrace>(params);
      case Benchmark::g500Sssp:
        return std::make_unique<G500SsspTrace>(params);
      case Benchmark::ycsbMem:
        return std::make_unique<YcsbMemTrace>(params);
    }
    kindle_panic("unknown benchmark");
}

// ---------------------------------------------------------------------
// Gapbs_pr
// ---------------------------------------------------------------------

GapbsPrTrace::GapbsPrTrace(const WorkloadParams &params)
    : _params(params),
      nodes((std::uint64_t(1) << 21) / params.scaleDown),
      rng(params.seed),
      hotNodes(nodes, 0.8, params.seed ^ 0x9e37)
{
    kindle_assert(nodes >= 64, "scaleDown too aggressive");
    // Areas mirror the PageRank working set: CSR index + edges plus
    // the two rank arrays.
    _layout.areas = {
        {0, AreaKind::heap, nodes * 8, "csr_index"},
        {1, AreaKind::heap, nodes * 4 * 8, "csr_edges"},
        {2, AreaKind::heap, nodes * 8, "ranks"},
        {3, AreaKind::heap, nodes * 8, "ranks_next"},
    };
    addStacks(_layout, params.threads, 4);
}

void
GapbsPrTrace::reset()
{
    rng = Random(_params.seed);
    hotNodes = ZipfianGenerator(nodes, 0.8, _params.seed ^ 0x9e37);
    emitted = 0;
    curNode = 0;
    queue.clear();
    queueIdx = 0;
    clockNs = 0;
}

void
GapbsPrTrace::refillNode()
{
    queue.clear();
    queueIdx = 0;

    const std::uint64_t u = curNode % nodes;
    ++curNode;

    // read csr_index[u] — sequential sweep.
    queue.push_back({clockNs, u * 8, 0, TraceOp::read, 0, 8});
    // E[degree] tuned so the long-run mix lands at ~77/23.
    const unsigned degree = rng.chance(0.17) ? 2 : 1;
    for (unsigned e = 0; e < degree; ++e) {
        // edge word — near-sequential within the CSR.
        const std::uint64_t edge_off =
            ((u * 4 + e) * 8) % _layout.areas[1].sizeBytes;
        queue.push_back(
            {clockNs, edge_off, 1, TraceOp::read, 0, 8});
        // rank of the (power-law) destination node.
        const std::uint64_t dst = hotNodes.next();
        queue.push_back(
            {clockNs, dst * 8, 2, TraceOp::read, 0, 8});
    }
    // write ranks_next[u] — sequential.
    queue.push_back({clockNs, u * 8, 3, TraceOp::write, 0, 8});

    maybeStackOp(rng, _params.threads, 4, clockNs, queue);
    clockNs += 2 + queue.size();
}

bool
GapbsPrTrace::next(TraceRecord &rec)
{
    if (emitted >= _params.ops)
        return false;
    while (queueIdx >= queue.size())
        refillNode();
    rec = queue[queueIdx++];
    rec.period = clockNs;
    ++emitted;
    return true;
}

// ---------------------------------------------------------------------
// G500_sssp
// ---------------------------------------------------------------------

G500SsspTrace::G500SsspTrace(const WorkloadParams &params)
    : _params(params),
      adjBytes((128 * oneMiB) / params.scaleDown),
      distEntries((2 * oneMiB) / params.scaleDown * 8 / 8),
      rng(params.seed)
{
    kindle_assert(adjBytes >= pageSize && distEntries >= 64,
                  "scaleDown too aggressive");
    _layout.areas = {
        {0, AreaKind::heap, adjBytes, "adjacency"},
        {1, AreaKind::heap, distEntries * 8, "dist"},
        {2, AreaKind::heap, (8 * oneMiB) / params.scaleDown,
         "frontier"},
    };
    addStacks(_layout, params.threads, 3);
}

void
G500SsspTrace::reset()
{
    rng = Random(_params.seed);
    emitted = 0;
    frontierHead = 0;
    frontierTail = 0;
    queue.clear();
    queueIdx = 0;
    clockNs = 0;
}

void
G500SsspTrace::refillStep()
{
    queue.clear();
    queueIdx = 0;

    const std::uint64_t frontier_bytes = _layout.areas[2].sizeBytes;
    // Pop a vertex from the frontier (sequential read).
    queue.push_back({clockNs,
                     (frontierHead * 8) % frontier_bytes, 2,
                     TraceOp::read, 0, 8});
    ++frontierHead;

    // Relax two edges: scattered adjacency reads, distance checks,
    // probabilistic distance writes and frontier pushes.
    for (unsigned e = 0; e < 2; ++e) {
        const std::uint64_t adj_off =
            rng.uniform(adjBytes / 8) * 8;
        queue.push_back({clockNs, adj_off, 0, TraceOp::read, 0, 8});
        const std::uint64_t v = rng.uniform(distEntries);
        queue.push_back({clockNs, v * 8, 1, TraceOp::read, 0, 8});
        if (rng.chance(0.6)) {
            queue.push_back(
                {clockNs, v * 8, 1, TraceOp::write, 0, 8});
        }
        if (rng.chance(0.58)) {
            queue.push_back({clockNs,
                             (frontierTail * 8) % frontier_bytes, 2,
                             TraceOp::write, 0, 8});
            ++frontierTail;
        }
    }

    maybeStackOp(rng, _params.threads, 3, clockNs, queue);
    clockNs += 2 + queue.size();
}

bool
G500SsspTrace::next(TraceRecord &rec)
{
    if (emitted >= _params.ops)
        return false;
    while (queueIdx >= queue.size())
        refillStep();
    rec = queue[queueIdx++];
    rec.period = clockNs;
    ++emitted;
    return true;
}

// ---------------------------------------------------------------------
// Ycsb_mem
// ---------------------------------------------------------------------

YcsbMemTrace::YcsbMemTrace(const WorkloadParams &params)
    : _params(params),
      records((std::uint64_t(1) << 21) / params.scaleDown),
      recordBytes(128),
      rng(params.seed)
{
    kindle_assert(records >= 64, "scaleDown too aggressive");
    keys = std::make_unique<ZipfianGenerator>(records, 0.99,
                                              params.seed ^ 0x51ab);
    _layout.areas = {
        {0, AreaKind::heap, records * recordBytes, "kvstore"},
        {1, AreaKind::heap, records * 8, "hashindex"},
    };
    addStacks(_layout, params.threads, 2);
}

void
YcsbMemTrace::reset()
{
    rng = Random(_params.seed);
    keys = std::make_unique<ZipfianGenerator>(records, 0.99,
                                              _params.seed ^ 0x51ab);
    emitted = 0;
    queue.clear();
    queueIdx = 0;
    clockNs = 0;
}

void
YcsbMemTrace::refillOp()
{
    queue.clear();
    queueIdx = 0;

    const std::uint64_t key = keys->next();
    // Index probe.
    queue.push_back({clockNs, key * 8, 1, TraceOp::read, 0, 8});

    const std::uint64_t rec_off = key * recordBytes;
    if (rng.chance(0.51)) {
        // Update: read header, write two value words.
        queue.push_back({clockNs, rec_off, 0, TraceOp::read, 0, 8});
        queue.push_back(
            {clockNs, rec_off + 16, 0, TraceOp::write, 0, 8});
        queue.push_back(
            {clockNs, rec_off + 64, 0, TraceOp::write, 0, 8});
    } else {
        // Read: header + value.
        queue.push_back({clockNs, rec_off, 0, TraceOp::read, 0, 8});
        queue.push_back(
            {clockNs, rec_off + 64, 0, TraceOp::read, 0, 8});
    }

    maybeStackOp(rng, _params.threads, 2, clockNs, queue);
    clockNs += 2 + queue.size();
}

bool
YcsbMemTrace::next(TraceRecord &rec)
{
    if (emitted >= _params.ops)
        return false;
    while (queueIdx >= queue.size())
        refillOp();
    rec = queue[queueIdx++];
    rec.period = clockNs;
    ++emitted;
    return true;
}

} // namespace kindle::prep
