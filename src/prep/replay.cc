#include "prep/replay.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace kindle::prep
{

ReplayStream::ReplayStream(TraceSource &source_arg,
                           const ReplayConfig &config_arg)
    : source(source_arg), config(config_arg)
{
    source.reset();
    // Plan fixed placements: each area on its own 2 MiB-aligned slab
    // with a guard gap, mirroring the generated template's layout.
    Addr cursor = config.baseVaddr;
    for (const AreaInfo &a : source.layout().areas) {
        const std::uint64_t len = roundUp(a.sizeBytes, pageSize);
        bases[a.areaId] = cursor;
        plan.emplace_back(cursor, len);
        planIds.push_back(a.areaId);
        const bool nvm = (a.kind == AreaKind::stack)
                             ? config.stacksInNvm
                             : config.heapsInNvm;
        planNvm.push_back(nvm);
        cursor += roundUp(len, 2 * oneMiB) + 2 * oneMiB;
    }
}

Addr
ReplayStream::areaBase(std::uint32_t area_id) const
{
    const auto it = bases.find(area_id);
    kindle_assert(it != bases.end(), "unknown area id {}", area_id);
    return it->second;
}

bool
ReplayStream::next(cpu::Op &op)
{
    switch (phase) {
      case Phase::setup:
        if (setupIdx < plan.size()) {
            op.kind = cpu::Op::Kind::mmap;
            op.addr = plan[setupIdx].first;
            op.size = plan[setupIdx].second;
            op.flags = cpu::mapFixed |
                       (planNvm[setupIdx] ? cpu::mapNvm : 0);
            ++setupIdx;
            return true;
        }
        phase = config.wrapInFase ? Phase::faseOpen : Phase::body;
        return next(op);

      case Phase::faseOpen:
        op = cpu::Op{};
        op.kind = cpu::Op::Kind::faseStart;
        phase = Phase::body;
        return true;

      case Phase::body: {
        if (config.computePerRecord > 0 &&
            sinceCompute >= config.computeBatch) {
            sinceCompute = 0;
            op = cpu::Op{};
            op.kind = cpu::Op::Kind::compute;
            op.size = config.computePerRecord * config.computeBatch;
            return true;
        }
        TraceRecord rec;
        if (!source.next(rec)) {
            phase = config.wrapInFase ? Phase::faseClose
                                      : Phase::teardown;
            return next(op);
        }
        ++replayed;
        ++sinceCompute;
        const AreaInfo *area = source.layout().find(rec.areaId);
        kindle_assert(area != nullptr, "record for unknown area {}",
                      rec.areaId);
        std::uint64_t off = rec.offset;
        if (off + rec.size > area->sizeBytes) {
            off = area->sizeBytes -
                  std::min<std::uint64_t>(rec.size, area->sizeBytes);
        }
        op = cpu::Op{};
        op.kind = rec.op == TraceOp::read ? cpu::Op::Kind::read
                                          : cpu::Op::Kind::write;
        op.addr = areaBase(rec.areaId) + off;
        op.size = rec.size == 0 ? 1 : rec.size;
        return true;
      }

      case Phase::faseClose:
        op = cpu::Op{};
        op.kind = cpu::Op::Kind::faseEnd;
        phase = Phase::teardown;
        return true;

      case Phase::teardown:
        if (teardownIdx < plan.size()) {
            op = cpu::Op{};
            op.kind = cpu::Op::Kind::munmap;
            op.addr = plan[teardownIdx].first;
            op.size = plan[teardownIdx].second;
            ++teardownIdx;
            return true;
        }
        phase = Phase::exit;
        return next(op);

      case Phase::exit:
        op = cpu::Op{};
        op.kind = cpu::Op::Kind::exit;
        phase = Phase::done;
        return true;

      case Phase::done:
        return false;
    }
    return false;
}

} // namespace kindle::prep
