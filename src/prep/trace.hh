/**
 * @file
 * The memory-trace vocabulary of Kindle's preparation sub-system.
 *
 * The paper's preparation component drives the real application under
 * Intel Pin, captures its virtual memory layout from /proc/pid/maps
 * (SniP for multi-threaded stacks), and reduces execution to a stream
 * of (period, offset, operation, size, area) tuples packed into a
 * disk image that the gemOS replay template consumes.  Kindle-repro
 * cannot run Pin in this environment, so the same tuple stream is
 * produced by statistically matched workload generators
 * (prep/workloads.hh) — the downstream simulation consumes an
 * identical format either way.
 */

#ifndef KINDLE_PREP_TRACE_HH
#define KINDLE_PREP_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace kindle::prep
{

/** Memory operation kind in a trace. */
enum class TraceOp : std::uint8_t
{
    read = 0,
    write = 1,
};

/** One captured access: the paper's 5-tuple. */
struct TraceRecord
{
    std::uint64_t period = 0;  ///< time of access (ns from start)
    std::uint64_t offset = 0;  ///< offset within the area
    std::uint32_t areaId = 0;  ///< which heap/stack area
    TraceOp op = TraceOp::read;
    std::uint8_t pad = 0;
    std::uint16_t size = 8;    ///< bytes accessed
};

static_assert(sizeof(TraceRecord) == 24);

/** Kinds of memory areas in the captured layout. */
enum class AreaKind : std::uint8_t
{
    heap = 0,
    stack = 1,   ///< per-thread stacks (captured via SniP)
    global = 2,
};

/** One area from the /proc/pid/maps-equivalent capture. */
struct AreaInfo
{
    std::uint32_t areaId = 0;
    AreaKind kind = AreaKind::heap;
    std::uint64_t sizeBytes = 0;
    std::string name;
};

/** The full captured layout. */
struct MemoryLayout
{
    std::vector<AreaInfo> areas;

    const AreaInfo *
    find(std::uint32_t area_id) const
    {
        for (const auto &a : areas)
            if (a.areaId == area_id)
                return &a;
        return nullptr;
    }

    std::uint64_t
    totalBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &a : areas)
            total += a.sizeBytes;
        return total;
    }
};

/** Aggregate statistics over a trace (paper Table II). */
struct TraceStats
{
    std::uint64_t totalOps = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    double
    readPct() const
    {
        return totalOps ? 100.0 * static_cast<double>(reads) /
                              static_cast<double>(totalOps)
                        : 0.0;
    }

    double
    writePct() const
    {
        return totalOps ? 100.0 * static_cast<double>(writes) /
                              static_cast<double>(totalOps)
                        : 0.0;
    }
};

/**
 * A pull-based producer of trace records (either a workload generator
 * or a loaded disk image).  reset() rewinds to the beginning; for
 * generators this must reproduce the identical stream.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** The captured memory layout the records refer to. */
    virtual const MemoryLayout &layout() const = 0;

    /** Produce the next record; false at end of trace. */
    virtual bool next(TraceRecord &rec) = 0;

    /** Rewind to the first record (deterministic). */
    virtual void reset() = 0;

    /** Human-readable benchmark name. */
    virtual const std::string &name() const = 0;
};

/** A fully materialized trace (what a disk image deserializes to). */
class TraceImage : public TraceSource
{
  public:
    TraceImage() = default;

    TraceImage(std::string name, MemoryLayout layout,
               std::vector<TraceRecord> records)
        : _name(std::move(name)),
          _layout(std::move(layout)),
          _records(std::move(records))
    {}

    /** Drain @p src into a materialized image. */
    static TraceImage capture(TraceSource &src);

    const MemoryLayout &layout() const override { return _layout; }
    const std::string &name() const override { return _name; }

    bool
    next(TraceRecord &rec) override
    {
        if (cursor >= _records.size())
            return false;
        rec = _records[cursor++];
        return true;
    }

    void reset() override { cursor = 0; }

    const std::vector<TraceRecord> &records() const { return _records; }

    /** Compute Table II-style aggregate statistics. */
    TraceStats stats() const;

  private:
    friend class ImageFile;

    std::string _name;
    MemoryLayout _layout;
    std::vector<TraceRecord> _records;
    std::size_t cursor = 0;
};

/** Compute stats by draining (and resetting) any source. */
TraceStats computeStats(TraceSource &src);

} // namespace kindle::prep

#endif // KINDLE_PREP_TRACE_HH
