/**
 * @file
 * The "disk image" produced by the code/image generator.
 *
 * The preparation sub-system packs the captured layout and the tuple
 * stream into a binary image that the simulation side mounts; this is
 * Kindle's equivalent of the gem5 disk image carrying the replay data
 * for the gemOS template program.
 */

#ifndef KINDLE_PREP_IMAGE_FILE_HH
#define KINDLE_PREP_IMAGE_FILE_HH

#include <string>

#include "prep/trace.hh"

namespace kindle::prep
{

/** Reader/writer for trace disk images. */
class ImageFile
{
  public:
    /**
     * Serialize @p src into the image at @p path (drains and resets
     * the source).  Fatal on I/O errors.
     */
    static void write(const std::string &path, TraceSource &src);

    /** Load an image back; fatal on format errors. */
    static TraceImage read(const std::string &path);

    /** Magic bytes identifying an image. */
    static constexpr std::uint64_t magic = 0x4b494e444c45494dull;
    static constexpr std::uint32_t version = 1;
};

} // namespace kindle::prep

#endif // KINDLE_PREP_IMAGE_FILE_HH
