#include "prep/image_file.hh"

#include <cstdio>
#include <memory>

#include "base/logging.hh"

namespace kindle::prep
{

namespace
{

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void
putBytes(std::FILE *f, const void *src, std::size_t n)
{
    if (std::fwrite(src, 1, n, f) != n)
        kindle_fatal("short write while writing trace image");
}

void
getBytes(std::FILE *f, void *dst, std::size_t n)
{
    if (std::fread(dst, 1, n, f) != n)
        kindle_fatal("short read / truncated trace image");
}

template <typename T>
void
putT(std::FILE *f, const T &v)
{
    putBytes(f, &v, sizeof(T));
}

template <typename T>
T
getT(std::FILE *f)
{
    T v{};
    getBytes(f, &v, sizeof(T));
    return v;
}

void
putString(std::FILE *f, const std::string &s)
{
    putT<std::uint32_t>(f, static_cast<std::uint32_t>(s.size()));
    putBytes(f, s.data(), s.size());
}

std::string
getString(std::FILE *f)
{
    const auto len = getT<std::uint32_t>(f);
    kindle_assert(len < 4096, "implausible string in trace image");
    std::string s(len, '\0');
    getBytes(f, s.data(), len);
    return s;
}

} // namespace

void
ImageFile::write(const std::string &path, TraceSource &src)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        kindle_fatal("cannot create trace image '{}'", path);

    putT(f.get(), magic);
    putT(f.get(), version);
    putString(f.get(), src.name());

    const MemoryLayout &layout = src.layout();
    putT<std::uint32_t>(f.get(),
                        static_cast<std::uint32_t>(layout.areas.size()));
    for (const auto &a : layout.areas) {
        putT(f.get(), a.areaId);
        putT<std::uint8_t>(f.get(), static_cast<std::uint8_t>(a.kind));
        putT(f.get(), a.sizeBytes);
        putString(f.get(), a.name);
    }

    // Stream the records, counting as we go; the count is patched in
    // at a fixed position afterwards.
    const long count_pos = std::ftell(f.get());
    putT<std::uint64_t>(f.get(), 0);
    std::uint64_t count = 0;
    src.reset();
    TraceRecord rec;
    while (src.next(rec)) {
        putT(f.get(), rec);
        ++count;
    }
    src.reset();
    if (std::fseek(f.get(), count_pos, SEEK_SET) != 0)
        kindle_fatal("seek failed while finalizing trace image");
    putT(f.get(), count);
}

TraceImage
ImageFile::read(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        kindle_fatal("cannot open trace image '{}'", path);

    if (getT<std::uint64_t>(f.get()) != magic)
        kindle_fatal("'{}' is not a Kindle trace image", path);
    if (getT<std::uint32_t>(f.get()) != version)
        kindle_fatal("'{}': unsupported image version", path);
    const std::string name = getString(f.get());

    MemoryLayout layout;
    const auto n_areas = getT<std::uint32_t>(f.get());
    kindle_assert(n_areas < 1024, "implausible area count");
    for (std::uint32_t i = 0; i < n_areas; ++i) {
        AreaInfo a;
        a.areaId = getT<std::uint32_t>(f.get());
        a.kind = static_cast<AreaKind>(getT<std::uint8_t>(f.get()));
        a.sizeBytes = getT<std::uint64_t>(f.get());
        a.name = getString(f.get());
        layout.areas.push_back(std::move(a));
    }

    const auto count = getT<std::uint64_t>(f.get());
    std::vector<TraceRecord> records(count);
    if (count > 0) {
        getBytes(f.get(), records.data(),
                 count * sizeof(TraceRecord));
    }
    return TraceImage(name, std::move(layout), std::move(records));
}

} // namespace kindle::prep
