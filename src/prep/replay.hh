/**
 * @file
 * The replay template: turns a captured trace into a gemOS program.
 *
 * This is Kindle's analogue of the generated template code the paper
 * describes: it performs heap/stack allocations matching the captured
 * layout (mmap with MAP_NVM for areas placed in NVM), then replays
 * every (period, offset, operation, size, area) tuple as loads and
 * stores at the areas' virtual addresses, and finally unmaps
 * everything.  Optionally the whole body is wrapped in a failure
 * atomic section (checkpoint_start/checkpoint_end) for the SSP study.
 */

#ifndef KINDLE_PREP_REPLAY_HH
#define KINDLE_PREP_REPLAY_HH

#include <memory>
#include <unordered_map>

#include "cpu/op.hh"
#include "prep/trace.hh"

namespace kindle::prep
{

/** Replay configuration. */
struct ReplayConfig
{
    bool heapsInNvm = true;   ///< MAP_NVM for heap/global areas
    bool stacksInNvm = true;  ///< MAP_NVM for stack areas
    bool wrapInFase = false;  ///< emit checkpoint_start/_end
    Addr baseVaddr = Addr(0x200000000);  ///< first area placement
    /** Compute cycles inserted per replayed record (think time). */
    Cycles computePerRecord = 2;
    /** Records per inserted compute burst. */
    unsigned computeBatch = 8;
};

/** The replayable program. */
class ReplayStream : public cpu::OpStream
{
  public:
    ReplayStream(TraceSource &source, const ReplayConfig &config);

    bool next(cpu::Op &op) override;

    /** Planned virtual base address of @p area_id. */
    Addr areaBase(std::uint32_t area_id) const;

    /** Records replayed so far. */
    std::uint64_t recordsReplayed() const { return replayed; }

  private:
    enum class Phase
    {
        setup,
        faseOpen,
        body,
        faseClose,
        teardown,
        exit,
        done,
    };

    TraceSource &source;
    ReplayConfig config;

    std::unordered_map<std::uint32_t, Addr> bases;
    std::vector<std::pair<Addr, std::uint64_t>> plan;  ///< addr,size
    std::vector<std::uint32_t> planIds;
    std::vector<bool> planNvm;

    Phase phase = Phase::setup;
    std::size_t setupIdx = 0;
    std::size_t teardownIdx = 0;
    std::uint64_t replayed = 0;
    unsigned sinceCompute = 0;
};

/**
 * A ReplayStream that owns its trace source.  ReplayStream proper
 * only references the source (benches keep the trace alive on the
 * stack); scenario factories hand the whole program to another thread,
 * so trace and stream must travel together.
 */
class OwningReplayStream : public cpu::OpStream
{
  public:
    OwningReplayStream(std::unique_ptr<TraceSource> source,
                       const ReplayConfig &config)
        : trace(std::move(source)), stream(*trace, config)
    {}

    bool next(cpu::Op &op) override { return stream.next(op); }

    std::uint64_t recordsReplayed() const
    {
        return stream.recordsReplayed();
    }

  private:
    std::unique_ptr<TraceSource> trace;
    ReplayStream stream;
};

} // namespace kindle::prep

#endif // KINDLE_PREP_REPLAY_HH
