#include "runner/report.hh"

#include <cstdlib>
#include <fstream>

#include "base/json.hh"
#include "base/logging.hh"

namespace kindle::runner
{

BenchReport::BenchReport(std::string bench_name, unsigned jobs_arg)
    : benchName(std::move(bench_name)), jobs(jobs_arg)
{}

void
BenchReport::add(const RunResult &result)
{
    points.push_back(result);
}

void
BenchReport::add(const std::vector<RunResult> &results)
{
    for (const auto &r : results)
        add(r);
}

void
BenchReport::keepStatPrefixes(std::vector<std::string> prefixes)
{
    statPrefixes = std::move(prefixes);
}

bool
BenchReport::exported(const std::string &path) const
{
    if (statPrefixes.empty())
        return true;
    for (const auto &prefix : statPrefixes) {
        if (path.compare(0, prefix.size(), prefix) == 0)
            return true;
    }
    return false;
}

void
BenchReport::writeJson(std::ostream &os) const
{
    json::Writer w(os);
    w.beginObject();
    w.keyValue("bench", benchName);
    w.keyValue("schema_version", std::uint64_t(1));
    w.keyValue("jobs", std::uint64_t(jobs));
    w.key("points");
    w.beginArray();
    for (const auto &p : points) {
        w.beginObject();
        w.keyValue("name", p.name);
        w.key("axes");
        w.beginObject();
        for (const auto &[axis, value] : p.axes)
            w.keyValue(axis, value);
        w.endObject();
        w.keyValue("ok", p.ok);
        if (!p.ok)
            w.keyValue("error", p.error);
        w.keyValue("ticks", static_cast<std::uint64_t>(p.ticks));
        if (includeWallMs)
            w.keyValue("wall_ms", p.wallMs);
        w.key("stats");
        w.beginObject();
        for (const auto &[path, value] : p.stats.entries()) {
            if (exported(path))
                w.keyValue(path, value);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

std::string
BenchReport::writeJsonFile() const
{
    std::string dir = ".";
    if (const char *env = std::getenv("KINDLE_RESULTS_DIR")) {
        if (*env)
            dir = env;
    }
    const std::string path = dir + "/BENCH_" + benchName + ".json";
    std::ofstream out(path);
    if (!out)
        kindle_fatal("cannot open {} for writing", path);
    writeJson(out);
    return path;
}

} // namespace kindle::runner
