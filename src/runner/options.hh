/**
 * @file
 * Command-line/environment options shared by every runner-driven
 * bench binary.
 *
 *   --jobs N          worker threads for the sweep (also: KINDLE_JOBS)
 *   --cores N         simulated CPU cores per system (KINDLE_CORES)
 *   --trace-out P     enable span collection and write Chrome
 *                     trace-event JSON per scenario (KINDLE_TRACE_OUT)
 *   --trace-flags L   comma-separated trace categories, e.g.
 *                     "checkpoint,redo" (KINDLE_TRACE_FLAGS)
 *   --trace-ring N    flight-recorder depth in records; 0 disables
 *                     (KINDLE_TRACE_RING)
 *   --flight-out P    write flight-recorder dumps here on power loss /
 *                     recovery errors (KINDLE_FLIGHT_OUT)
 *   --core-fail S     arm seeded CPU-core faults (KINDLE_CORE_FAIL);
 *                     spec: comma-separated CPU@TICKNS or CPU#NTHIPI
 *                     entries, each with an optional +STALLNS suffix
 *                     (absent = fail-stop), e.g. "1@2000000,2#2+3000"
 *   --ipi-timeout NS  shootdown ack timeout before an IPI resend
 *                     (KINDLE_IPI_TIMEOUT; 0 keeps the kernel default)
 *   --sample-interval NS  telemetry sampling period in nanoseconds;
 *                     0 disables the sampler (KINDLE_TELEMETRY)
 *   --telemetry-out P write per-scenario TELEM_* time-series here; a
 *                     ".json"/".csv" path is used directly (and picks
 *                     the format), any other path is a directory of
 *                     "TELEM_<scenario>.json" files
 *                     (KINDLE_TELEMETRY_OUT)
 *   --prof            attach the host-side self-profiler: prof.*
 *                     stats in reports plus a sorted category table
 *                     on stderr per scenario (KINDLE_PROF=1)
 *   --list-crash-sites  print the crash-site inventory and exit
 *   --help            print usage for the common flags
 *
 * Unrecognized arguments are fatal so a typo cannot silently fall
 * back to defaults in a long experiment campaign.
 */

#ifndef KINDLE_RUNNER_OPTIONS_HH
#define KINDLE_RUNNER_OPTIONS_HH

#include <cstddef>
#include <optional>
#include <string>

#include "base/types.hh"
#include "fault/fault.hh"

namespace kindle::runner
{

struct Options
{
    /** Sweep parallelism; 0 = one worker per hardware thread. */
    unsigned jobs = 0;

    /**
     * Simulated cores per KindleSystem.  1 (the default) reproduces
     * the single-core seed behavior bit-for-bit; benches that honor
     * the flag copy it into KindleConfig::numCores.
     */
    unsigned cores = 1;

    /**
     * When non-empty, spans are collected and each scenario's trace is
     * written as Chrome trace-event JSON.  A path ending in ".json" is
     * used directly for a single scenario (sweeps insert the scenario
     * name before the extension); any other path is treated as a
     * directory of per-scenario "<name>.trace.json" files.
     */
    std::string traceOut;

    /** Category list for the sink mask; empty = all categories. */
    std::string traceFlags;

    /** Flight-recorder depth override (unset = TraceParams default). */
    std::optional<std::size_t> traceRing;

    /** Automatic flight-dump destination (same routing as traceOut). */
    std::string flightOut;

    /**
     * Seeded CPU-core faults parsed from --core-fail /
     * KINDLE_CORE_FAIL (unset = no plan armed; benches that honor the
     * flag copy it into KindleConfig::coreFault).
     */
    std::optional<fault::CoreFaultPlan> coreFault;

    /** Shootdown ack timeout override in ticks (0 = kernel default). */
    Tick ipiTimeout = 0;

    /** Telemetry sampling period in ticks (0 = sampler off). */
    Tick sampleInterval = 0;

    /**
     * When non-empty, each scenario's sampler series is exported.
     * Routing matches traceOut: a ".json"/".csv" path is a single
     * file (the extension picks the format), anything else a
     * directory of "TELEM_<scenario>.json" files.  Implies a default
     * sampleInterval when none was given.
     */
    std::string telemetryOut;

    /** Attach the self-profiler (prof.* stats + category table). */
    bool prof = false;
};

/**
 * Parse a --core-fail spec: comma-separated entries, each
 * "CPU@TICKNS" (fail at the first evaluation at/after TICKNS
 * nanoseconds) or "CPU#N" (fail at the core's Nth received shootdown
 * IPI), with an optional "+STALLNS" suffix turning the fail-stop into
 * a transient stall of STALLNS nanoseconds.  Fatal on malformed input.
 */
fault::CoreFaultPlan parseCoreFaultSpec(const std::string &spec,
                                        const char *origin);

/**
 * Parse @p argc / @p argv.  Precedence: command line over the
 * corresponding KINDLE_* environment variable over the default.
 * Calls std::exit(0) after printing usage for --help.
 */
Options parseOptions(int argc, char **argv);

} // namespace kindle::runner

#endif // KINDLE_RUNNER_OPTIONS_HH
