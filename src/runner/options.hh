/**
 * @file
 * Command-line/environment options shared by every runner-driven
 * bench binary.
 *
 *   --jobs N          worker threads for the sweep (also: KINDLE_JOBS)
 *   --cores N         simulated CPU cores per system (KINDLE_CORES)
 *   --trace-out P     enable span collection and write Chrome
 *                     trace-event JSON per scenario (KINDLE_TRACE_OUT)
 *   --trace-flags L   comma-separated trace categories, e.g.
 *                     "checkpoint,redo" (KINDLE_TRACE_FLAGS)
 *   --trace-ring N    flight-recorder depth in records; 0 disables
 *                     (KINDLE_TRACE_RING)
 *   --flight-out P    write flight-recorder dumps here on power loss /
 *                     recovery errors (KINDLE_FLIGHT_OUT)
 *   --help            print usage for the common flags
 *
 * Unrecognized arguments are fatal so a typo cannot silently fall
 * back to defaults in a long experiment campaign.
 */

#ifndef KINDLE_RUNNER_OPTIONS_HH
#define KINDLE_RUNNER_OPTIONS_HH

#include <cstddef>
#include <optional>
#include <string>

namespace kindle::runner
{

struct Options
{
    /** Sweep parallelism; 0 = one worker per hardware thread. */
    unsigned jobs = 0;

    /**
     * Simulated cores per KindleSystem.  1 (the default) reproduces
     * the single-core seed behavior bit-for-bit; benches that honor
     * the flag copy it into KindleConfig::numCores.
     */
    unsigned cores = 1;

    /**
     * When non-empty, spans are collected and each scenario's trace is
     * written as Chrome trace-event JSON.  A path ending in ".json" is
     * used directly for a single scenario (sweeps insert the scenario
     * name before the extension); any other path is treated as a
     * directory of per-scenario "<name>.trace.json" files.
     */
    std::string traceOut;

    /** Category list for the sink mask; empty = all categories. */
    std::string traceFlags;

    /** Flight-recorder depth override (unset = TraceParams default). */
    std::optional<std::size_t> traceRing;

    /** Automatic flight-dump destination (same routing as traceOut). */
    std::string flightOut;
};

/**
 * Parse @p argc / @p argv.  Precedence: command line over the
 * corresponding KINDLE_* environment variable over the default.
 * Calls std::exit(0) after printing usage for --help.
 */
Options parseOptions(int argc, char **argv);

} // namespace kindle::runner

#endif // KINDLE_RUNNER_OPTIONS_HH
