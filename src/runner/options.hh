/**
 * @file
 * Command-line/environment options shared by every runner-driven
 * bench binary.
 *
 *   --jobs N       worker threads for the sweep (also: KINDLE_JOBS)
 *   --help         print usage for the common flags
 *
 * Unrecognized arguments are fatal so a typo cannot silently fall
 * back to defaults in a long experiment campaign.
 */

#ifndef KINDLE_RUNNER_OPTIONS_HH
#define KINDLE_RUNNER_OPTIONS_HH

#include <string>

namespace kindle::runner
{

struct Options
{
    /** Sweep parallelism; 0 = one worker per hardware thread. */
    unsigned jobs = 0;
};

/**
 * Parse @p argc / @p argv.  Precedence: command line over KINDLE_JOBS
 * over the hardware default.  Calls std::exit(0) after printing usage
 * for --help.
 */
Options parseOptions(int argc, char **argv);

} // namespace kindle::runner

#endif // KINDLE_RUNNER_OPTIONS_HH
