#include "runner/fleet_scenario.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/rand.hh"

namespace kindle::runner
{

namespace
{

std::uint64_t
fleetNumeric(const char *text, const char *origin)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        kindle_fatal("{}: bad number '{}'", origin, text);
    return static_cast<std::uint64_t>(v);
}

double
fleetReal(const char *text, const char *origin)
{
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0')
        kindle_fatal("{}: bad value '{}'", origin, text);
    return v;
}

fleet::Arrival
parseArrival(const char *text, const char *origin)
{
    if (std::strcmp(text, "poisson") == 0)
        return fleet::Arrival::poisson;
    if (std::strcmp(text, "bursty") == 0)
        return fleet::Arrival::bursty;
    kindle_fatal("{}: bad arrival '{}' (want poisson|bursty)", origin,
                 text);
}

unsigned
checkedTenants(std::uint64_t v, const char *origin)
{
    if (v < 1 || v > 65536)
        kindle_fatal("{}: bad tenant count {} (want 1..65536)", origin,
                     v);
    return static_cast<unsigned>(v);
}

double
checkedZipf(double v, const char *origin)
{
    if (!(v > 0.0) || !(v < 1.0))
        kindle_fatal("{}: bad zipf theta {} (want (0,1))", origin, v);
    return v;
}

/** "--name V" / "--name=V" matcher (mirrors runner/options.cc). */
const char *
valueOf(const char *arg, const char *name, int argc, char **argv,
        int &i)
{
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0)
        return nullptr;
    if (arg[len] == '=')
        return arg + len + 1;
    if (arg[len] != '\0')
        return nullptr;
    if (i + 1 >= argc)
        kindle_fatal("{} needs a value", name);
    return argv[++i];
}

} // namespace

FleetOptions
parseFleetOptions(int argc, char **argv, std::vector<char *> &pass_argv)
{
    FleetOptions fo;
    if (const char *env = std::getenv("KINDLE_FLEET_TENANTS")) {
        if (*env) {
            fo.params.tenants = checkedTenants(
                fleetNumeric(env, "KINDLE_FLEET_TENANTS"),
                "KINDLE_FLEET_TENANTS");
        }
    }
    if (const char *env = std::getenv("KINDLE_FLEET_CHURN")) {
        if (*env) {
            fo.params.churnSpawns = static_cast<unsigned>(
                fleetNumeric(env, "KINDLE_FLEET_CHURN"));
        }
    }
    if (const char *env = std::getenv("KINDLE_FLEET_ZIPF")) {
        if (*env) {
            fo.params.zipfTheta = checkedZipf(
                fleetReal(env, "KINDLE_FLEET_ZIPF"),
                "KINDLE_FLEET_ZIPF");
        }
    }
    if (const char *env = std::getenv("KINDLE_FLEET_ARRIVAL")) {
        if (*env)
            fo.params.arrival = parseArrival(env, "KINDLE_FLEET_ARRIVAL");
    }
    if (const char *env = std::getenv("KINDLE_FLEET_SEED")) {
        if (*env)
            fo.params.seed = fleetNumeric(env, "KINDLE_FLEET_SEED");
    }
    if (const char *env = std::getenv("KINDLE_FLEET_REQUESTS")) {
        if (*env) {
            fo.params.requestsPerTenant = static_cast<unsigned>(
                fleetNumeric(env, "KINDLE_FLEET_REQUESTS"));
        }
    }

    pass_argv.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (const char *v = valueOf(arg, "--tenants", argc, argv, i)) {
            fo.params.tenants = checkedTenants(
                fleetNumeric(v, "--tenants"), "--tenants");
        } else if (const char *v =
                       valueOf(arg, "--churn", argc, argv, i)) {
            fo.params.churnSpawns = static_cast<unsigned>(
                fleetNumeric(v, "--churn"));
        } else if (const char *v =
                       valueOf(arg, "--zipf", argc, argv, i)) {
            fo.params.zipfTheta =
                checkedZipf(fleetReal(v, "--zipf"), "--zipf");
        } else if (const char *v =
                       valueOf(arg, "--arrival", argc, argv, i)) {
            fo.params.arrival = parseArrival(v, "--arrival");
        } else if (const char *v =
                       valueOf(arg, "--fleet-seed", argc, argv, i)) {
            fo.params.seed = fleetNumeric(v, "--fleet-seed");
        } else if (const char *v =
                       valueOf(arg, "--requests", argc, argv, i)) {
            fo.params.requestsPerTenant = static_cast<unsigned>(
                fleetNumeric(v, "--requests"));
        } else if (std::strcmp(arg, "--no-pressure") == 0) {
            fo.pressure = false;
        } else {
            pass_argv.push_back(argv[i]);
        }
    }
    return fo;
}

KindleConfig
makeFleetConfig(const FleetOptions &opts, unsigned cores)
{
    const fleet::FleetParams &fp = opts.params;
    KindleConfig cfg;
    cfg.memory.dramBytes = 256 * oneMiB;
    cfg.memory.nvmBytes = 1024 * oneMiB;
    cfg.numCores = cores;

    // Every concurrent tenant needs a saved-state slot; churn
    // replacements recycle the slots their predecessors freed, so the
    // fleet size (plus a little headroom) bounds occupancy.
    cfg.kernel.nvmLayout.procSlots = fp.tenants + 8;
    // Mapping lists sized to the largest tenant heap instead of the
    // historical per-process 4 MiB — at 1k+ slots the default would
    // swallow the whole device.
    const std::uint64_t list_bytes =
        std::max<std::uint64_t>(fp.largePages * 16 * 2, 16 * oneKiB);
    cfg.kernel.nvmLayout.mappingListBytesPerProc =
        roundUp(list_bytes, pageSize);
    // Checkpoint storms over the whole population between truncations.
    cfg.kernel.nvmLayout.redoLogBytes = 32 * oneMiB;
    // Thousands of exited tenants must not leave an O(all processes
    // ever) scan inside every checkpoint and reclaim pass.
    cfg.kernel.reapZombies = true;
    // Short quanta keep many tenants genuinely time-shared per
    // checkpoint interval.
    cfg.kernel.timeslice = 50 * oneUs;

    if (opts.checkpointInterval > 0) {
        cfg.persistence = persist::PersistParams{
            persist::PtScheme::rebuild, opts.checkpointInterval};
        cfg.persistence->incrementalMappingList = true;
        // Sweep cost must track the set of tenants that ran, not the
        // population: an unconditional sweep writes O(tenants) NVM
        // lines per checkpoint and saturates the media.
        cfg.persistence->skipCleanProcesses = true;
    }

    if (opts.pressure) {
        fault::PressurePlan pp;
        // The fleet's aggregate resident demand (tenants × hot set)
        // must exceed both zones: MAP_NVM faults degrade to DRAM once
        // NVM dips to the reserve, DRAM exhaustion drives reclaim
        // demotions, and the worst offenders meet the OOM killer —
        // whose kills the churn driver backfills.
        pp.nvmZoneFrames = std::max<std::uint64_t>(
            std::uint64_t(fp.tenants) * 6, 512);
        pp.dramZoneFrames = std::max<std::uint64_t>(
            std::uint64_t(fp.tenants) * 5, 1024);
        pp.seed = rand::deriveSeed(fp.seed, 0x9e55);
        pp.allocFailRate = 0.0;  // exhaustion pressure, not injection
        // The NVM zone spends the whole run pinned at its cap, so
        // unthrottled relief would convert every patrol pass into a
        // whole-population early checkpoint; at most match the
        // periodic cadence instead of multiplying it.
        pp.reclaimCheckpointMinGap = opts.checkpointInterval;
        cfg.pressure = pp;
    }
    return cfg;
}

Scenario
makeFleetScenario(std::string name, Axes axes, const FleetOptions &opts,
                  unsigned cores)
{
    Scenario sc;
    sc.name = std::move(name);
    sc.axes = std::move(axes);
    sc.config = makeFleetConfig(opts, cores);
    sc.drive = [params = opts.params](
                   KindleSystem &sys,
                   statistics::StatSnapshot &extra) -> Tick {
        const Tick t0 = sys.now();
        os::Kernel &kernel = sys.kernel();
        auto counters = std::make_shared<fleet::FleetCounters>();

        unsigned next_ordinal = 0;
        const auto spawnOne = [&] {
            kernel.spawn(
                fleet::makeTenant(params, next_ordinal,
                                  counters.get()),
                fleet::tenantName(next_ordinal));
            ++next_ordinal;
        };
        for (unsigned i = 0; i < params.tenants; ++i)
            spawnOne();

        unsigned churn_left = params.churnSpawns;
        unsigned peak_live = kernel.liveProcessCount();
        // Epoch slices between respawn sweeps: long enough to amortize
        // the population scan, short against the checkpoint interval
        // so churn lands inside storms.
        const Tick slice = oneMs / 2;
        for (;;) {
            const unsigned live = kernel.liveProcessCount();
            peak_live = std::max(peak_live, live);
            if (live < params.tenants && churn_left > 0) {
                const unsigned deficit = params.tenants - live;
                const unsigned n = std::min(deficit, churn_left);
                for (unsigned i = 0; i < n; ++i)
                    spawnOne();
                churn_left -= n;
            } else if (live == 0) {
                break;
            }
            kernel.runUntil(sys.now() + slice);
        }

        extra.set("fleet.tenants",
                  static_cast<double>(params.tenants));
        extra.set("fleet.spawned", static_cast<double>(next_ordinal));
        extra.set("fleet.churnSpawns",
                  static_cast<double>(next_ordinal - params.tenants));
        extra.set("fleet.peakLive", static_cast<double>(peak_live));
        extra.set("fleet.requests",
                  static_cast<double>(counters->requests));
        extra.set("fleet.reads",
                  static_cast<double>(counters->reads));
        extra.set("fleet.writes",
                  static_cast<double>(counters->writes));
        return sys.now() - t0;
    };
    return sc;
}

} // namespace kindle::runner
