#include "runner/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>
#include <thread>

#include "base/logging.hh"

namespace kindle::runner
{

SweepRunner::SweepRunner(unsigned jobs) : _jobs(jobs)
{
    if (_jobs == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        _jobs = hw ? hw : 1;
    }
}

SweepRunner::SweepRunner(const Options &opts)
    : SweepRunner(opts.jobs)
{
    _opts = opts;
}

namespace
{

/** Scenario names use '/' as an axis separator; file names cannot. */
std::string
sanitizeName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (c == '/' || c == '\\' || c == ':' || c == ' ')
            c = '_';
    }
    return out;
}

} // namespace

std::string
SweepRunner::routeFile(const std::string &base, const std::string &name,
                       bool solo, const char *suffix)
{
    if (base.empty())
        return {};
    for (const std::string_view ext : {std::string_view(".json"),
                                       std::string_view(".csv")}) {
        if (base.size() <= ext.size() ||
            base.compare(base.size() - ext.size(), ext.size(), ext) !=
                0) {
            continue;
        }
        if (solo)
            return base;
        // Sweep over a file path: splice the point name in before the
        // extension so concurrent workers get distinct files.
        return base.substr(0, base.size() - ext.size()) + "." +
               sanitizeName(name) + std::string(ext);
    }
    std::error_code ec;
    std::filesystem::create_directories(base, ec);
    if (ec) {
        kindle_fatal("cannot create trace directory '{}': {}", base,
                     ec.message());
    }
    return base + "/" + sanitizeName(name) + suffix;
}

RunResult
SweepRunner::runRouted(const Scenario &scenario,
                       const std::string &trace_path,
                       const std::string &flight_path,
                       const std::string &telemetry_path) const
{
    RunResult result;
    result.name = scenario.name;
    result.axes = scenario.axes;

    // The routing knobs override the scenario's own trace config.
    KindleConfig config = scenario.config;
    if (_opts.cores > 1)
        config.numCores = _opts.cores;
    if (_opts.coreFault && !config.coreFault)
        config.coreFault = _opts.coreFault;
    if (_opts.ipiTimeout != 0)
        config.kernel.ipiAckTimeout = _opts.ipiTimeout;
    if (!trace_path.empty())
        config.trace.spans = true;
    if (!_opts.traceFlags.empty())
        config.trace.categories = _opts.traceFlags;
    if (_opts.traceRing)
        config.trace.ringDepth = *_opts.traceRing;
    if (!flight_path.empty())
        config.trace.flightDumpPath = flight_path;
    if (_opts.sampleInterval != 0)
        config.telemetry.sampleInterval = _opts.sampleInterval;
    if (_opts.prof)
        config.profiling = true;

    const auto wall_start = std::chrono::steady_clock::now();
    try {
        KindleSystem sys(config);
        statistics::StatSnapshot extra;
        if (scenario.drive)
            result.ticks = scenario.drive(sys, extra);
        else
            result.ticks = sys.run(scenario.program(), scenario.name);
        result.stats = sys.snapshotStats();
        for (const auto &[path, value] : extra.entries())
            result.stats.set(path, value);
        if (!trace_path.empty()) {
            std::ofstream out(trace_path);
            if (!out) {
                kindle_fatal("cannot write trace to '{}'",
                             trace_path);
            }
            sys.writeTrace(out);
            result.tracePath = trace_path;
        }
        if (!telemetry_path.empty() && sys.sampler()) {
            std::ofstream out(telemetry_path);
            if (!out) {
                kindle_fatal("cannot write telemetry to '{}'",
                             telemetry_path);
            }
            const bool csv =
                telemetry_path.size() > 4 &&
                telemetry_path.compare(telemetry_path.size() - 4, 4,
                                       ".csv") == 0;
            sys.writeTelemetry(out, csv);
            result.telemetryPath = telemetry_path;
        }
        if (config.profiling && sys.profiler()) {
            std::ostringstream table;
            table << "prof[" << scenario.name << "]\n";
            sys.profiler()->printTable(table);
            // One write per scenario keeps concurrent workers'
            // tables from interleaving line-by-line.
            std::cerr << table.str();
        }
        result.ok = true;
    } catch (const SimError &e) {
        result.error = e.message();
    } catch (const std::exception &e) {
        result.error = e.what();
    }
    const auto wall_end = std::chrono::steady_clock::now();
    result.wallMs =
        std::chrono::duration<double, std::milli>(wall_end -
                                                  wall_start)
            .count();
    return result;
}

RunResult
SweepRunner::runScenario(const Scenario &scenario) const
{
    return runRouted(
        scenario,
        routeFile(_opts.traceOut, scenario.name, /*solo=*/true,
                  ".trace.json"),
        routeFile(_opts.flightOut, scenario.name, /*solo=*/true,
                  ".flight.json"),
        routeFile(_opts.telemetryOut, "TELEM_" + scenario.name,
                  /*solo=*/true, ".json"));
}

RunResult
SweepRunner::runOne(const Scenario &scenario)
{
    return SweepRunner(1).runScenario(scenario);
}

std::vector<RunResult>
SweepRunner::run(const std::vector<Scenario> &scenarios)
{
    std::vector<RunResult> results(scenarios.size());
    const bool solo = scenarios.size() == 1;

    // Work stealing over an atomic cursor: results land at their
    // scenario's index, so output order never depends on scheduling.
    std::atomic<std::size_t> cursor{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= scenarios.size())
                return;
            results[i] = runRouted(
                scenarios[i],
                routeFile(_opts.traceOut, scenarios[i].name, solo,
                          ".trace.json"),
                routeFile(_opts.flightOut, scenarios[i].name, solo,
                          ".flight.json"),
                routeFile(_opts.telemetryOut,
                          "TELEM_" + scenarios[i].name, solo,
                          ".json"));
        }
    };

    const std::size_t want =
        std::min<std::size_t>(_jobs, scenarios.size());
    if (want <= 1) {
        worker();
        return results;
    }
    std::vector<std::thread> pool;
    pool.reserve(want);
    for (std::size_t t = 0; t < want; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return results;
}

} // namespace kindle::runner
