#include "runner/sweep_runner.hh"

#include <atomic>
#include <chrono>
#include <thread>

#include "base/logging.hh"

namespace kindle::runner
{

SweepRunner::SweepRunner(unsigned jobs) : _jobs(jobs)
{
    if (_jobs == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        _jobs = hw ? hw : 1;
    }
}

RunResult
SweepRunner::runOne(const Scenario &scenario)
{
    RunResult result;
    result.name = scenario.name;
    result.axes = scenario.axes;

    const auto wall_start = std::chrono::steady_clock::now();
    try {
        KindleSystem sys(scenario.config);
        statistics::StatSnapshot extra;
        if (scenario.drive)
            result.ticks = scenario.drive(sys, extra);
        else
            result.ticks = sys.run(scenario.program(), scenario.name);
        result.stats = sys.snapshotStats();
        for (const auto &[path, value] : extra.entries())
            result.stats.set(path, value);
        result.ok = true;
    } catch (const SimError &e) {
        result.error = e.message();
    } catch (const std::exception &e) {
        result.error = e.what();
    }
    const auto wall_end = std::chrono::steady_clock::now();
    result.wallMs =
        std::chrono::duration<double, std::milli>(wall_end -
                                                  wall_start)
            .count();
    return result;
}

std::vector<RunResult>
SweepRunner::run(const std::vector<Scenario> &scenarios)
{
    std::vector<RunResult> results(scenarios.size());

    // Work stealing over an atomic cursor: results land at their
    // scenario's index, so output order never depends on scheduling.
    std::atomic<std::size_t> cursor{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= scenarios.size())
                return;
            results[i] = runOne(scenarios[i]);
        }
    };

    const std::size_t want =
        std::min<std::size_t>(_jobs, scenarios.size());
    if (want <= 1) {
        worker();
        return results;
    }
    std::vector<std::thread> pool;
    pool.reserve(want);
    for (std::size_t t = 0; t < want; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return results;
}

} // namespace kindle::runner
