/**
 * @file
 * Runner wiring for the multi-tenant fleet workload (src/fleet):
 * option parsing (--tenants/--churn/--zipf/--arrival and their
 * KINDLE_FLEET_* environment mirrors), the fleet system configuration
 * (thousands of saved-state slots, right-sized mapping lists, zombie
 * reaping, checkpoint storms, optional memory pressure), and the
 * churn-driving Scenario whose drive loop respawns exited tenants
 * through the crash-consistent spawn/exit paths.
 */

#ifndef KINDLE_RUNNER_FLEET_SCENARIO_HH
#define KINDLE_RUNNER_FLEET_SCENARIO_HH

#include <vector>

#include "fleet/fleet.hh"
#include "runner/scenario.hh"

namespace kindle::runner
{

/** Fleet flags parsed on top of the common runner set. */
struct FleetOptions
{
    fleet::FleetParams params;

    /** Arm the memory-pressure machinery (reclaim + OOM) so the
     *  fleet's demand genuinely exceeds the zones. */
    bool pressure = true;

    /** Checkpoint storm period (0 = persistence disabled). */
    Tick checkpointInterval = 2 * oneMs;
};

/**
 * Strip the fleet flags out of @p argv (unrecognized arguments are
 * forwarded through @p pass_argv to runner::parseOptions):
 *
 *   --tenants N     fleet size             (KINDLE_FLEET_TENANTS)
 *   --churn N       replacement spawns     (KINDLE_FLEET_CHURN)
 *   --zipf THETA    key-popularity skew    (KINDLE_FLEET_ZIPF)
 *   --arrival A     poisson | bursty       (KINDLE_FLEET_ARRIVAL)
 *   --fleet-seed N  master fleet seed      (KINDLE_FLEET_SEED)
 *   --requests N    requests per tenant    (KINDLE_FLEET_REQUESTS)
 *   --no-pressure   run without the pressure plan
 *
 * Environment mirrors follow the runner convention: the command line
 * wins over the environment over the default.
 */
FleetOptions parseFleetOptions(int argc, char **argv,
                               std::vector<char *> &pass_argv);

/**
 * A KindleConfig sized for the fleet: saved-state slots for every
 * concurrent tenant (plus headroom), mapping lists sized to the
 * largest tenant heap instead of the historical per-process 4 MiB,
 * zombie reaping on, short timeslices, periodic checkpoints, and —
 * unless disabled — a pressure plan that reclaim and the OOM killer
 * must work against at steady state.
 */
KindleConfig makeFleetConfig(const FleetOptions &opts, unsigned cores);

/**
 * The churning fleet scenario: spawn the initial fleet, then run in
 * scheduler-epoch slices, replacing exited tenants with fresh-ordinal
 * respawns until the churn budget drains and the fleet empties.
 * Exports fleet.* stats (spawns, churn spawns, peak live population,
 * request/read/write counts) through the extra snapshot.
 */
Scenario makeFleetScenario(std::string name, Axes axes,
                           const FleetOptions &opts, unsigned cores);

} // namespace kindle::runner

#endif // KINDLE_RUNNER_FLEET_SCENARIO_HH
