#include "runner/options.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/logging.hh"

namespace kindle::runner
{

namespace
{

unsigned
parseJobs(const char *text, const char *origin)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v > 4096)
        kindle_fatal("{}: bad job count '{}'", origin, text);
    return static_cast<unsigned>(v);
}

} // namespace

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    if (const char *env = std::getenv("KINDLE_JOBS")) {
        if (*env)
            opts.jobs = parseJobs(env, "KINDLE_JOBS");
    }
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0) {
            std::printf(
                "usage: %s [--jobs N]\n"
                "  --jobs N   sweep worker threads "
                "(default: hardware threads; env KINDLE_JOBS)\n",
                argv[0]);
            std::exit(0);
        }
        if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc)
                kindle_fatal("--jobs needs a value");
            opts.jobs = parseJobs(argv[++i], "--jobs");
            continue;
        }
        if (std::strncmp(arg, "--jobs=", 7) == 0) {
            opts.jobs = parseJobs(arg + 7, "--jobs");
            continue;
        }
        kindle_fatal("unknown argument '{}' (try --help)", arg);
    }
    return opts;
}

} // namespace kindle::runner
