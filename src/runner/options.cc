#include "runner/options.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/logging.hh"

namespace kindle::runner
{

namespace
{

unsigned
parseJobs(const char *text, const char *origin)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v > 4096)
        kindle_fatal("{}: bad job count '{}'", origin, text);
    return static_cast<unsigned>(v);
}

unsigned
parseCores(const char *text, const char *origin)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v < 1 || v > 32)
        kindle_fatal("{}: bad core count '{}' (want 1..32)", origin,
                     text);
    return static_cast<unsigned>(v);
}

std::size_t
parseRing(const char *text, const char *origin)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v > (1ul << 24))
        kindle_fatal("{}: bad ring depth '{}'", origin, text);
    return static_cast<std::size_t>(v);
}

/**
 * Match "--name V" / "--name=V" and return the value, advancing @p i
 * past a separate value argument.  Returns nullptr on no match.
 */
const char *
valueOf(const char *arg, const char *name, int argc, char **argv,
        int &i)
{
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0)
        return nullptr;
    if (arg[len] == '=')
        return arg + len + 1;
    if (arg[len] != '\0')
        return nullptr;
    if (i + 1 >= argc)
        kindle_fatal("{} needs a value", name);
    return argv[++i];
}

std::uint64_t
parseUint(const char *text, const char **end_out, const char *origin)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text)
        kindle_fatal("{}: expected a number at '{}'", origin, text);
    *end_out = end;
    return static_cast<std::uint64_t>(v);
}

Tick
parseTimeoutNs(const char *text, const char *origin)
{
    const char *end = nullptr;
    const std::uint64_t v = parseUint(text, &end, origin);
    if (*end != '\0')
        kindle_fatal("{}: bad timeout '{}' (want nanoseconds)",
                     origin, text);
    return static_cast<Tick>(v) * oneNs;
}

Tick
parseIntervalNs(const char *text, const char *origin)
{
    const char *end = nullptr;
    const std::uint64_t v = parseUint(text, &end, origin);
    if (*end != '\0')
        kindle_fatal("{}: bad interval '{}' (want nanoseconds)",
                     origin, text);
    return static_cast<Tick>(v) * oneNs;
}

} // namespace

fault::CoreFaultPlan
parseCoreFaultSpec(const std::string &spec, const char *origin)
{
    fault::CoreFaultPlan plan;
    const char *p = spec.c_str();
    while (*p != '\0') {
        fault::CoreFault f;
        const char *end = nullptr;
        const std::uint64_t cpu = parseUint(p, &end, origin);
        if (cpu >= 32)
            kindle_fatal("{}: bad core id {} in '{}'", origin, cpu,
                         spec);
        f.cpu = static_cast<CpuId>(cpu);
        if (*end == '@') {
            f.atTick =
                static_cast<Tick>(parseUint(end + 1, &end, origin)) *
                oneNs;
            if (f.atTick == 0)
                kindle_fatal("{}: zero tick trigger in '{}'", origin,
                             spec);
        } else if (*end == '#') {
            f.atNthIpi = parseUint(end + 1, &end, origin);
            if (f.atNthIpi == 0)
                kindle_fatal("{}: zero IPI trigger in '{}'", origin,
                             spec);
        } else {
            kindle_fatal("{}: expected '@TICKNS' or '#NTHIPI' after "
                         "core id in '{}'", origin, spec);
        }
        if (*end == '+') {
            f.stallTicks =
                static_cast<Tick>(parseUint(end + 1, &end, origin)) *
                oneNs;
            if (f.stallTicks == 0)
                kindle_fatal("{}: zero stall in '{}'", origin, spec);
        }
        plan.faults.push_back(f);
        if (*end == ',') {
            p = end + 1;
        } else if (*end == '\0') {
            break;
        } else {
            kindle_fatal("{}: trailing garbage '{}' in '{}'", origin,
                         end, spec);
        }
    }
    if (plan.faults.empty())
        kindle_fatal("{}: empty core-fault spec", origin);
    return plan;
}

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    if (const char *env = std::getenv("KINDLE_JOBS")) {
        if (*env)
            opts.jobs = parseJobs(env, "KINDLE_JOBS");
    }
    if (const char *env = std::getenv("KINDLE_CORES")) {
        if (*env)
            opts.cores = parseCores(env, "KINDLE_CORES");
    }
    if (const char *env = std::getenv("KINDLE_TRACE_OUT"))
        opts.traceOut = env;
    if (const char *env = std::getenv("KINDLE_TRACE_FLAGS"))
        opts.traceFlags = env;
    if (const char *env = std::getenv("KINDLE_TRACE_RING")) {
        if (*env)
            opts.traceRing = parseRing(env, "KINDLE_TRACE_RING");
    }
    if (const char *env = std::getenv("KINDLE_FLIGHT_OUT"))
        opts.flightOut = env;
    if (const char *env = std::getenv("KINDLE_CORE_FAIL")) {
        if (*env)
            opts.coreFault = parseCoreFaultSpec(env, "KINDLE_CORE_FAIL");
    }
    if (const char *env = std::getenv("KINDLE_IPI_TIMEOUT")) {
        if (*env)
            opts.ipiTimeout = parseTimeoutNs(env, "KINDLE_IPI_TIMEOUT");
    }
    if (const char *env = std::getenv("KINDLE_TELEMETRY")) {
        if (*env) {
            opts.sampleInterval =
                parseIntervalNs(env, "KINDLE_TELEMETRY");
        }
    }
    if (const char *env = std::getenv("KINDLE_TELEMETRY_OUT"))
        opts.telemetryOut = env;
    if (const char *env = std::getenv("KINDLE_PROF")) {
        if (*env && std::strcmp(env, "0") != 0)
            opts.prof = true;
    }

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0) {
            std::printf(
                "usage: %s [--jobs N] [--cores N] [--trace-out PATH]\n"
                "          [--trace-flags LIST] [--trace-ring N]\n"
                "          [--flight-out PATH]\n"
                "  --jobs N          sweep worker threads "
                "(default: hardware threads; env KINDLE_JOBS)\n"
                "  --cores N         simulated CPU cores per system "
                "(default 1; env KINDLE_CORES)\n"
                "  --trace-out P     collect spans; write Chrome "
                "trace JSON per scenario (env KINDLE_TRACE_OUT)\n"
                "  --trace-flags L   comma-separated categories, "
                "e.g. checkpoint,redo (env KINDLE_TRACE_FLAGS)\n"
                "  --trace-ring N    flight-recorder depth; 0 "
                "disables the ring (env KINDLE_TRACE_RING)\n"
                "  --flight-out P    auto flight-recorder dump "
                "destination (env KINDLE_FLIGHT_OUT)\n"
                "  --core-fail S     seeded CPU-core faults, e.g. "
                "1@2000000 or 2#2+3000 (env KINDLE_CORE_FAIL)\n"
                "  --ipi-timeout NS  shootdown ack timeout before a "
                "resend (env KINDLE_IPI_TIMEOUT)\n"
                "  --sample-interval NS  telemetry sampling period; "
                "0 disables (env KINDLE_TELEMETRY)\n"
                "  --telemetry-out P per-scenario TELEM_* time-series "
                "destination (env KINDLE_TELEMETRY_OUT)\n"
                "  --prof            attach the self-profiler; prof.* "
                "stats + category table (env KINDLE_PROF=1)\n"
                "  --list-crash-sites  print the crash-site "
                "inventory and exit\n",
                argv[0]);
            std::exit(0);
        }
        if (std::strcmp(arg, "--list-crash-sites") == 0) {
            for (const fault::CrashSiteInfo &info :
                 fault::crashSiteCatalog()) {
                std::printf("%-28s %s\n", info.name,
                            info.description);
            }
            std::exit(0);
        }
        if (const char *v = valueOf(arg, "--jobs", argc, argv, i)) {
            opts.jobs = parseJobs(v, "--jobs");
            continue;
        }
        if (const char *v = valueOf(arg, "--cores", argc, argv, i)) {
            opts.cores = parseCores(v, "--cores");
            continue;
        }
        if (const char *v = valueOf(arg, "--trace-out", argc, argv, i)) {
            opts.traceOut = v;
            continue;
        }
        if (const char *v =
                valueOf(arg, "--trace-flags", argc, argv, i)) {
            opts.traceFlags = v;
            continue;
        }
        if (const char *v =
                valueOf(arg, "--trace-ring", argc, argv, i)) {
            opts.traceRing = parseRing(v, "--trace-ring");
            continue;
        }
        if (const char *v =
                valueOf(arg, "--flight-out", argc, argv, i)) {
            opts.flightOut = v;
            continue;
        }
        if (const char *v =
                valueOf(arg, "--core-fail", argc, argv, i)) {
            opts.coreFault = parseCoreFaultSpec(v, "--core-fail");
            continue;
        }
        if (const char *v =
                valueOf(arg, "--ipi-timeout", argc, argv, i)) {
            opts.ipiTimeout = parseTimeoutNs(v, "--ipi-timeout");
            continue;
        }
        if (const char *v =
                valueOf(arg, "--sample-interval", argc, argv, i)) {
            opts.sampleInterval =
                parseIntervalNs(v, "--sample-interval");
            continue;
        }
        if (const char *v =
                valueOf(arg, "--telemetry-out", argc, argv, i)) {
            opts.telemetryOut = v;
            continue;
        }
        if (std::strcmp(arg, "--prof") == 0) {
            opts.prof = true;
            continue;
        }
        kindle_fatal("unknown argument '{}' (try --help)", arg);
    }
    // An export destination with no explicit period would record
    // nothing; default to one sample per simulated millisecond.
    if (!opts.telemetryOut.empty() && opts.sampleInterval == 0)
        opts.sampleInterval = oneMs;
    return opts;
}

} // namespace kindle::runner
