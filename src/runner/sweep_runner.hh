/**
 * @file
 * SweepRunner: execute a vector of Scenarios on a thread pool, one
 * fully self-contained KindleSystem per scenario.
 *
 * Parallelism changes wall-clock time only: the simulator consults no
 * host time or host randomness, each scenario owns its whole stat
 * tree, and the only process-global state (trace flags, the
 * error-reporting mode) is read-only during runs — so per-sweep-point
 * tick counts and stat snapshots are bit-identical whether the sweep
 * runs with 1 job or N.  The determinism tests in tests/runner assert
 * exactly that.
 *
 * Telemetry routing: constructed from Options, the runner applies the
 * --trace-* knobs to every scenario's config and writes one Chrome
 * trace file (and one flight-dump path) *per scenario*, deriving
 * distinct file names from the scenario names — concurrent workers
 * never share a stream, so traces cannot interleave.  The
 * --sample-interval/--telemetry-out/--prof knobs route the same way:
 * one TELEM_* time-series file per scenario, and one profiler table
 * on stderr per profiled scenario.
 */

#ifndef KINDLE_RUNNER_SWEEP_RUNNER_HH
#define KINDLE_RUNNER_SWEEP_RUNNER_HH

#include <string>
#include <vector>

#include "base/stats.hh"
#include "runner/options.hh"
#include "runner/scenario.hh"

namespace kindle::runner
{

/** Outcome of one executed scenario. */
struct RunResult
{
    std::string name;
    Axes axes;

    /** Simulated ticks consumed by the run (KindleSystem::run). */
    Tick ticks = 0;

    /** Host wall-clock milliseconds (reporting only — never fed back
     *  into the simulation). */
    double wallMs = 0;

    /** Full stat snapshot of the system after the run. */
    statistics::StatSnapshot stats;

    /** Chrome trace file written for this run (empty when tracing is
     *  off or the run failed before export). */
    std::string tracePath;

    /** Telemetry time-series file written for this run (empty when
     *  the sampler is off or the run failed before export). */
    std::string telemetryPath;

    /** False when the scenario threw; error holds the message. */
    bool ok = false;
    std::string error;
};

class SweepRunner
{
  public:
    /** @param jobs Worker threads; 0 = one per hardware thread. */
    explicit SweepRunner(unsigned jobs = 0);

    /** Adopt --jobs and the --trace-* routing knobs. */
    explicit SweepRunner(const Options &opts);

    unsigned jobs() const { return _jobs; }

    /**
     * Run every scenario and return results in scenario order
     * regardless of completion order.  Scenarios must not share
     * mutable state through their program factories.
     */
    std::vector<RunResult> run(const std::vector<Scenario> &scenarios);

    /**
     * Execute a single scenario inline (no threads), honouring this
     * runner's trace routing.
     */
    RunResult runScenario(const Scenario &scenario) const;

    /** Execute a single scenario inline with no trace routing. */
    static RunResult runOne(const Scenario &scenario);

  private:
    /**
     * Resolve the per-scenario output file under @p base: a ".json"
     * (or ".csv") base names the file directly when @p solo (sweeps
     * splice the sanitized scenario name in before the extension);
     * any other base is a directory of "<name><suffix>" files,
     * created on demand.  Empty base → empty result.
     */
    static std::string routeFile(const std::string &base,
                                 const std::string &name, bool solo,
                                 const char *suffix);

    RunResult runRouted(const Scenario &scenario,
                        const std::string &trace_path,
                        const std::string &flight_path,
                        const std::string &telemetry_path) const;

    unsigned _jobs;
    Options _opts;
};

} // namespace kindle::runner

#endif // KINDLE_RUNNER_SWEEP_RUNNER_HH
