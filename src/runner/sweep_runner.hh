/**
 * @file
 * SweepRunner: execute a vector of Scenarios on a thread pool, one
 * fully self-contained KindleSystem per scenario.
 *
 * Parallelism changes wall-clock time only: the simulator consults no
 * host time or host randomness, each scenario owns its whole stat
 * tree, and the only process-global state (trace flags, the
 * error-reporting mode) is read-only during runs — so per-sweep-point
 * tick counts and stat snapshots are bit-identical whether the sweep
 * runs with 1 job or N.  The determinism tests in tests/runner assert
 * exactly that.
 */

#ifndef KINDLE_RUNNER_SWEEP_RUNNER_HH
#define KINDLE_RUNNER_SWEEP_RUNNER_HH

#include <string>
#include <vector>

#include "base/stats.hh"
#include "runner/scenario.hh"

namespace kindle::runner
{

/** Outcome of one executed scenario. */
struct RunResult
{
    std::string name;
    Axes axes;

    /** Simulated ticks consumed by the run (KindleSystem::run). */
    Tick ticks = 0;

    /** Host wall-clock milliseconds (reporting only — never fed back
     *  into the simulation). */
    double wallMs = 0;

    /** Full stat snapshot of the system after the run. */
    statistics::StatSnapshot stats;

    /** False when the scenario threw; error holds the message. */
    bool ok = false;
    std::string error;
};

class SweepRunner
{
  public:
    /** @param jobs Worker threads; 0 = one per hardware thread. */
    explicit SweepRunner(unsigned jobs = 0);

    unsigned jobs() const { return _jobs; }

    /**
     * Run every scenario and return results in scenario order
     * regardless of completion order.  Scenarios must not share
     * mutable state through their program factories.
     */
    std::vector<RunResult> run(const std::vector<Scenario> &scenarios);

    /** Execute a single scenario inline (no threads). */
    static RunResult runOne(const Scenario &scenario);

  private:
    unsigned _jobs;
};

} // namespace kindle::runner

#endif // KINDLE_RUNNER_SWEEP_RUNNER_HH
