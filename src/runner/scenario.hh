/**
 * @file
 * A Scenario is one point of an experiment sweep: a complete
 * KindleConfig, a factory producing the workload program, and the
 * named sweep-axis values that identify the point ("scheme=rebuild",
 * "interval=10ms", ...).
 *
 * Scenarios are plain values — copying one is cheap and running one
 * touches no shared state, which is what lets SweepRunner execute
 * many of them concurrently while staying bit-identical to a
 * sequential run.
 */

#ifndef KINDLE_RUNNER_SCENARIO_HH
#define KINDLE_RUNNER_SCENARIO_HH

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "kindle/kindle.hh"

namespace kindle::runner
{

/** Ordered axis→value labels describing one sweep point. */
using Axes = std::vector<std::pair<std::string, std::string>>;

/** One experiment configuration to run. */
struct Scenario
{
    /** Unique human-readable point name, e.g. "gapbs_pr/1ms". */
    std::string name;

    /** Sweep coordinates, serialized into the JSON record. */
    Axes axes;

    /** Full system configuration for this point. */
    KindleConfig config;

    /**
     * Builds the workload each time the scenario runs.  A factory
     * (not a stream) because OpStreams are consumed by a run and a
     * scenario may be executed more than once (e.g. --jobs 1 vs
     * --jobs 4 determinism checks).
     */
    std::function<std::unique_ptr<cpu::OpStream>()> program;

    /**
     * Custom driver replacing the default spawn-and-run.  When set,
     * the runner calls it instead of KindleSystem::run() — this is how
     * multi-phase harnesses (crash + reboot + verify) run under the
     * sweep machinery.  Returns the simulated ticks consumed; entries
     * added to @p extra are merged into the exported stat snapshot
     * after capture (and may overwrite captured paths).
     */
    std::function<Tick(KindleSystem &sys,
                       statistics::StatSnapshot &extra)>
        drive;
};

} // namespace kindle::runner

#endif // KINDLE_RUNNER_SCENARIO_HH
