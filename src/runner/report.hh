/**
 * @file
 * BenchReport: the structured-results side of a bench binary.
 *
 * Collects the RunResults of one sweep and writes the machine-readable
 * record the perf trajectory consumes:
 *
 *   BENCH_<name>.json
 *   {
 *     "bench": "<name>",
 *     "schema_version": 1,
 *     "jobs": 4,
 *     "points": [
 *       {
 *         "name": "gapbs_pr/1ms",
 *         "axes": {"benchmark": "gapbs_pr", "interval": "1ms"},
 *         "ok": true,
 *         "ticks": 123456789,
 *         "wall_ms": 41.7,
 *         "stats": {"ssp.intervalCommits": 12, ...}
 *       }, ...
 *     ]
 *   }
 *
 * Everything except wall_ms is deterministic: same config, same JSON,
 * independent of the --jobs level that produced it.
 */

#ifndef KINDLE_RUNNER_REPORT_HH
#define KINDLE_RUNNER_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "runner/sweep_runner.hh"

namespace kindle::runner
{

class BenchReport
{
  public:
    /**
     * @param bench_name Bench identifier; the default output file is
     *                   "BENCH_<bench_name>.json".
     * @param jobs       Parallelism used, recorded in the header.
     */
    BenchReport(std::string bench_name, unsigned jobs);

    /** Append one sweep point. */
    void add(const RunResult &result);

    /** Append a whole sweep in order. */
    void add(const std::vector<RunResult> &results);

    /**
     * Restrict the per-point "stats" object to snapshot entries whose
     * path starts with one of @p prefixes (e.g. {"ssp.", "persist."}).
     * Default: export every entry.
     */
    void keepStatPrefixes(std::vector<std::string> prefixes);

    /**
     * Drop the per-point "wall_ms" field — the only nondeterministic
     * entry — so the full output file is byte-identical across runs
     * (what the fuzz harness's determinism guarantee rests on).
     */
    void omitWallClock() { includeWallMs = false; }

    /** Serialize the record to @p os. */
    void writeJson(std::ostream &os) const;

    /**
     * Write "<dir>/BENCH_<name>.json" (dir defaults to the working
     * directory, overridable via the KINDLE_RESULTS_DIR environment
     * variable) and return the path written.
     */
    std::string writeJsonFile() const;

    const std::string &name() const { return benchName; }

  private:
    bool exported(const std::string &path) const;

    std::string benchName;
    unsigned jobs;
    bool includeWallMs = true;
    std::vector<std::string> statPrefixes;
    std::vector<RunResult> points;
};

} // namespace kindle::runner

#endif // KINDLE_RUNNER_REPORT_HH
