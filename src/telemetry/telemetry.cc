#include "telemetry/telemetry.hh"

#include "base/json.hh"
#include "base/logging.hh"

namespace kindle::telemetry
{

Sampler::Sampler(sim::Simulation &sim, const TelemetryParams &params,
                 SnapshotFn snapshot_fn)
    : sim::Event("telemetry.sample", Priority::telemetry), sim(sim),
      snapshotFn(std::move(snapshot_fn)),
      interval(params.sampleInterval),
      maxSamples(std::max<std::size_t>(params.maxSamples & ~1ull, 2))
{
}

void
Sampler::addStatChannel(const std::string &name, Kind kind,
                        const std::string &stat_path)
{
    for (const Channel &ch : channels) {
        if (ch.name == name)
            kindle_fatal("telemetry channel {} already registered",
                         name);
    }
    channels.push_back({name, kind, stat_path, nullptr, 0});
}

void
Sampler::addCallbackChannel(const std::string &name, Kind kind,
                            ValueFn fn)
{
    for (const Channel &ch : channels) {
        if (ch.name == name)
            kindle_fatal("telemetry channel {} already registered",
                         name);
    }
    channels.push_back({name, kind, {}, std::move(fn), 0});
}

double
Sampler::rawValue(const Channel &ch,
                  const statistics::StatSnapshot &snap) const
{
    // Absent paths read as 0: lazily-registered stats (reclaim, bad
    // frames) simply have not happened yet.
    return ch.fn ? ch.fn() : snap.getOr(ch.statPath, 0);
}

void
Sampler::start()
{
    if (interval == 0 || channels.empty())
        return;
    if (scheduled())
        sim.eventq().deschedule(this);
    // Prime the rate baselines without recording a sample: the first
    // recorded delta then covers exactly [start, start + interval],
    // and the series' deltas sum to "total activity since start()".
    const statistics::StatSnapshot snap = snapshotFn();
    for (Channel &ch : channels)
        ch.prevRaw = rawValue(ch, snap);
    scheduleNext();
}

void
Sampler::stop()
{
    if (scheduled())
        sim.eventq().deschedule(this);
}

void
Sampler::scheduleNext()
{
    sim.eventq().schedule(this, sim.now() + interval * stride);
}

void
Sampler::sampleOnce()
{
    const statistics::StatSnapshot snap = snapshotFn();
    Sample s;
    s.tick = sim.now();
    s.values.reserve(channels.size());
    for (Channel &ch : channels) {
        const double raw = rawValue(ch, snap);
        if (ch.kind == Kind::level) {
            s.values.push_back(raw);
            continue;
        }
        // A raw reading below the baseline means the counter restarted
        // (crash/reboot rebuilt the stat tree); the whole reading is
        // then new activity.  Deltas stay non-negative either way.
        const double delta =
            raw >= ch.prevRaw ? raw - ch.prevRaw : raw;
        ch.prevRaw = raw;
        s.values.push_back(delta);
    }
    series.push_back(std::move(s));
    if (series.size() >= maxSamples)
        decimate();
}

void
Sampler::decimate()
{
    std::vector<Sample> merged;
    merged.reserve(series.size() / 2);
    for (std::size_t i = 0; i + 1 < series.size(); i += 2) {
        Sample &a = series[i];
        Sample &b = series[i + 1];
        Sample m;
        // The merged sample stands for the whole [a-start, b-end]
        // window: rates add across the pair, levels keep the later
        // instant, and the later tick labels it.
        m.tick = b.tick;
        m.values.resize(channels.size());
        for (std::size_t c = 0; c < channels.size(); ++c) {
            m.values[c] = channels[c].kind == Kind::rate
                              ? a.values[c] + b.values[c]
                              : b.values[c];
        }
        merged.push_back(std::move(m));
    }
    series = std::move(merged);
    stride *= 2;
}

void
Sampler::process()
{
    sampleOnce();
    scheduleNext();
}

std::vector<std::string>
Sampler::channelNames() const
{
    std::vector<std::string> names;
    names.reserve(channels.size());
    for (const Channel &ch : channels)
        names.push_back(ch.name);
    return names;
}

void
Sampler::writeJson(std::ostream &os) const
{
    json::Writer w(os);
    w.beginObject();
    w.keyValue("sampleInterval", static_cast<std::uint64_t>(interval));
    w.keyValue("stride", stride);
    w.keyValue("effectiveInterval",
               static_cast<std::uint64_t>(effectiveInterval()));
    w.key("channels");
    w.beginArray();
    for (const Channel &ch : channels) {
        w.beginObject();
        w.keyValue("name", ch.name);
        w.keyValue("kind",
                   ch.kind == Kind::rate ? "rate" : "level");
        if (!ch.statPath.empty())
            w.keyValue("stat", ch.statPath);
        w.endObject();
    }
    w.endArray();
    w.key("samples");
    w.beginArray();
    for (const Sample &s : series) {
        w.beginObject();
        w.keyValue("tick", static_cast<std::uint64_t>(s.tick));
        w.key("values");
        w.beginArray();
        for (double v : s.values)
            w.value(v);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
Sampler::writeCsv(std::ostream &os) const
{
    os << "tick";
    for (const Channel &ch : channels)
        os << ',' << ch.name;
    os << '\n';
    for (const Sample &s : series) {
        os << s.tick;
        for (double v : s.values)
            os << ',' << v;
        os << '\n';
    }
}

} // namespace kindle::telemetry
