/**
 * @file
 * Time-series telemetry: an event-queue-driven sampler that turns the
 * machine's end-of-run counters into bounded in-simulated-time series.
 *
 * PRs 7-8 gave the machine rich pressure/reclaim/IPI counters, but
 * totals hide the dynamics — occupancy ramps, reclaim storms, IPI
 * bursts — that hybrid-memory studies (Memos; the emerging-memory
 * simulation tutorial in PAPERS.md) show are the interesting signal.
 * The Sampler fires every `sampleInterval` ticks (default off),
 * captures one StatSnapshot of the whole machine, and extracts a
 * registered set of *channels*:
 *
 *  - level channels record the instantaneous value (gauge semantics:
 *    frame occupancy, resident pages, runqueue depth, redo-log fill);
 *  - rate channels record the per-interval delta of a monotonic
 *    counter (faults, migrations, demotions, IPIs), clamped to the
 *    raw value if the counter restarted (a crash/reboot resets stat
 *    trees), so deltas are non-negative and sum back to the
 *    end-of-run total.
 *
 * Channels name either a snapshot path (resolved through
 * StatSnapshot's O(1) index; a path absent from this sample — lazily
 * registered stats, post-crash teardown — reads as 0) or a callback
 * for quantities no stat exports.  Snapshot-based extraction means
 * the sampler holds no pointers into component stat trees, so
 * crash() tearing components down cannot dangle it.
 *
 * The series is bounded: at `maxSamples` the sampler halves the
 * series by merging adjacent sample pairs (rates add, levels keep the
 * later instant) and doubles its sampling stride, preserving both the
 * memory bound and the deltas-sum-to-totals invariant for arbitrary
 * run lengths.
 *
 * Export is one JSON or CSV document per system, routed per scenario
 * by the runner (TELEM_<scenario>.json next to BENCH_*.json).
 */

#ifndef KINDLE_TELEMETRY_TELEMETRY_HH
#define KINDLE_TELEMETRY_TELEMETRY_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "sim/simulation.hh"

namespace kindle::telemetry
{

/** Sampler configuration (KindleConfig::telemetry). */
struct TelemetryParams
{
    /** Ticks between samples; 0 disables the sampler entirely. */
    Tick sampleInterval = 0;

    /**
     * Series length bound; reaching it merges sample pairs and
     * doubles the stride.  Rounded down to even, minimum 2.
     */
    std::size_t maxSamples = 4096;
};

/**
 * The periodic sampling pass.  Owner constructs it with a function
 * that snapshots the machine's stat forest, registers channels, and
 * calls start(); crash handling clears the event queue, after which
 * restart() re-primes the rate baselines and resumes.
 */
class Sampler : public sim::Event
{
  public:
    enum class Kind
    {
        level, ///< instantaneous value at the sample tick
        rate,  ///< delta of a monotonic counter since the last sample
    };

    using SnapshotFn = std::function<statistics::StatSnapshot()>;
    using ValueFn = std::function<double()>;

    /** One recorded sample: the tick plus one value per channel. */
    struct Sample
    {
        Tick tick = 0;
        std::vector<double> values;
    };

    Sampler(sim::Simulation &sim, const TelemetryParams &params,
            SnapshotFn snapshot_fn);

    /** Record @p stat_path from each sample's snapshot as @p name. */
    void addStatChannel(const std::string &name, Kind kind,
                        const std::string &stat_path);

    /** Record @p fn() at each sample as @p name. */
    void addCallbackChannel(const std::string &name, Kind kind,
                            ValueFn fn);

    /**
     * Prime rate baselines from the current state and schedule the
     * first sample.  No-op when sampleInterval is 0.
     */
    void start();

    /**
     * Resume after a crash/reboot cleared the event queue: re-primes
     * rate baselines (the rebooted machine's counters restarted) and
     * reschedules.  Already-recorded samples are kept.
     */
    void restart() { start(); }

    /** Stop sampling; the recorded series stays available. */
    void stop();

    bool enabled() const { return interval != 0; }

    void process() override;

    const std::vector<Sample> &samples() const { return series; }

    /** Channel names, in registration (= Sample::values) order. */
    std::vector<std::string> channelNames() const;

    /** Ticks between recorded samples right now (interval × stride). */
    Tick effectiveInterval() const { return interval * stride; }

    /** Whole-series JSON document (channels + samples). */
    void writeJson(std::ostream &os) const;

    /** CSV: "tick,chan1,chan2,..." header plus one row per sample. */
    void writeCsv(std::ostream &os) const;

  private:
    struct Channel
    {
        std::string name;
        Kind kind;
        std::string statPath; ///< empty for callback channels
        ValueFn fn;           ///< null for stat channels
        double prevRaw = 0;   ///< rate channels: last raw reading
    };

    /** Raw reading of @p ch from @p snap (or its callback). */
    double rawValue(const Channel &ch,
                    const statistics::StatSnapshot &snap) const;

    /** Take and record one sample at the current tick. */
    void sampleOnce();

    /** Halve the series by merging adjacent pairs; double stride. */
    void decimate();

    void scheduleNext();

    sim::Simulation &sim;
    SnapshotFn snapshotFn;
    Tick interval;
    std::size_t maxSamples;

    std::vector<Channel> channels;
    std::vector<Sample> series;

    /** Interval multiplier; doubled by each decimation. */
    std::uint64_t stride = 1;
};

} // namespace kindle::telemetry

#endif // KINDLE_TELEMETRY_TELEMETRY_HH
