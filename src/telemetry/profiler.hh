/**
 * @file
 * Host-side self-profiler: scoped RAII wall-clock timers over the
 * event dispatch loop and the major subsystem entry points, feeding a
 * `prof.*` stat group of per-category self-time and call counts.
 *
 * The ROADMAP's throughput item needs attribution, not just totals:
 * fig5 points cost ~112 ms each, but *where* does host time go —
 * event dispatch, cache lookups, page walks, checkpoints?  Each
 * KINDLE_PROF_SCOPE(cat) probe times the rest of its enclosing block
 * and charges the category with its **exclusive (self) time**: the
 * elapsed wall time minus whatever nested probes already claimed.
 * Self times therefore partition the run, and their sum approximates
 * total measured wall time — the property the CI perf gate and the
 * --prof table rely on.
 *
 * Everything here is header-only and `inline`, so instrumented
 * headers (sim/simulation.hh's event loop) need no link dependency on
 * the telemetry library.  Routing mirrors trace::SinkScope /
 * fault::InjectorScope: a thread-local Profiler pointer, registered
 * (possibly as null, to shadow an outer system) for the lifetime of a
 * ProfilerScope.  A probe on a thread with no registered profiler is
 * one thread-local load and a branch; compiled with
 * -DKINDLE_TELEMETRY=0 it vanishes entirely.
 *
 * prof.* stats are wall-clock derived and thus nondeterministic, so a
 * Profiler must only be attached when profiling was explicitly
 * requested — BENCH_*.json's "everything except wall_ms is
 * deterministic" contract depends on the default snapshot never
 * containing them.
 */

#ifndef KINDLE_TELEMETRY_PROFILER_HH
#define KINDLE_TELEMETRY_PROFILER_HH

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>

#include "base/stats.hh"

#ifndef KINDLE_TELEMETRY
#define KINDLE_TELEMETRY 1
#endif

namespace kindle::telemetry
{

/** Profiled host-time categories, one per major subsystem path. */
enum class ProfCat : unsigned
{
    eventLoop, ///< event queue dispatch (outside any handler's probe)
    sched,     ///< scheduler epochs: dispatch, slices, runqueues
    cache,     ///< cache-hierarchy access path
    tlbWalk,   ///< page-table walks on TLB misses
    memCtrl,   ///< memory-controller request service
    ckpt,      ///< checkpoint construction and commit
    redo,      ///< redo-log append and replay
    recovery,  ///< post-crash recovery pipeline
    scrub,     ///< NVM patrol scrubber passes
    reclaim,   ///< watermark reclaim patrol + emergency passes
    numCats,
};

inline constexpr unsigned numProfCats =
    static_cast<unsigned>(ProfCat::numCats);

/** Canonical short name of @p cat (stat names derive from it). */
inline const char *
profCatName(ProfCat cat)
{
    static constexpr std::array<const char *, numProfCats> names = {
        "eventLoop", "sched",     "cache", "tlbWalk", "memCtrl",
        "ckpt",      "redo",      "recovery", "scrub", "reclaim",
    };
    return names[static_cast<unsigned>(cat)];
}

/** Monotonic host clock, in nanoseconds. */
inline std::uint64_t
hostNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

class ProfScope;

/**
 * Per-system accumulator of self-time and call counts, owning the
 * "prof" stat group.  Construct one only when profiling is requested;
 * its existence is what turns the probes on for the registering
 * thread.
 */
class Profiler
{
  public:
    Profiler()
        : group("prof",
                "host-side self-profiler (exclusive wall ns and "
                "calls per category; nondeterministic)")
    {
        for (unsigned i = 0; i < numProfCats; ++i) {
            const std::string base = profCatName(ProfCat(i));
            selfNs[i] = &group.addScalar(
                base + "Ns",
                "exclusive host wall ns spent in " + base);
            calls[i] = &group.addScalar(
                base + "Calls", "probe entries into " + base);
        }
    }

    statistics::StatGroup &stats() { return group; }

    double
    categoryNs(ProfCat cat) const
    {
        return selfNs[static_cast<unsigned>(cat)]->value();
    }

    double
    categoryCalls(ProfCat cat) const
    {
        return calls[static_cast<unsigned>(cat)]->value();
    }

    /** Sum of every category's exclusive time, in ns. */
    double
    totalNs() const
    {
        double total = 0;
        for (unsigned i = 0; i < numProfCats; ++i)
            total += selfNs[i]->value();
        return total;
    }

    /**
     * Print the sorted category table (self-ms descending):
     *
     *   prof: category      calls      self-ms   share
     *   prof: cache       1234567        45.21   40.3%
     */
    void
    printTable(std::ostream &os) const
    {
        struct Row
        {
            const char *name;
            double calls;
            double ns;
        };
        std::array<Row, numProfCats> rows;
        for (unsigned i = 0; i < numProfCats; ++i) {
            rows[i] = {profCatName(ProfCat(i)), calls[i]->value(),
                       selfNs[i]->value()};
        }
        std::sort(rows.begin(), rows.end(),
                  [](const Row &a, const Row &b) { return a.ns > b.ns; });
        const double total = totalNs();
        char line[128];
        std::snprintf(line, sizeof(line), "prof: %-10s %12s %12s %7s\n",
                      "category", "calls", "self-ms", "share");
        os << line;
        for (const Row &r : rows) {
            if (r.calls == 0 && r.ns == 0)
                continue;
            std::snprintf(line, sizeof(line),
                          "prof: %-10s %12.0f %12.3f %6.1f%%\n", r.name,
                          r.calls, r.ns / 1e6,
                          total ? 100.0 * r.ns / total : 0.0);
            os << line;
        }
        std::snprintf(line, sizeof(line),
                      "prof: %-10s %12s %12.3f\n", "total", "",
                      total / 1e6);
        os << line;
    }

  private:
    friend class ProfScope;

    void
    record(ProfCat cat, std::uint64_t self_ns)
    {
        *selfNs[static_cast<unsigned>(cat)] +=
            static_cast<double>(self_ns);
        ++*calls[static_cast<unsigned>(cat)];
    }

    statistics::StatGroup group;
    std::array<statistics::Scalar *, numProfCats> selfNs{};
    std::array<statistics::Scalar *, numProfCats> calls{};

    /** Innermost live ProfScope on the registered thread. */
    ProfScope *top = nullptr;
};

namespace detail
{
/** The profiler probes feed on this thread (usually none). */
inline thread_local Profiler *currentProfiler = nullptr;
} // namespace detail

/** The profiler registered on this thread, or nullptr. */
inline Profiler *
currentProfiler()
{
    return detail::currentProfiler;
}

/**
 * RAII registration of a system's profiler (may be null) on this
 * thread; mirrors trace::SinkScope.  The most recent registration
 * wins, so an unprofiled system shadows any outer profiled one
 * instead of leaking its probe time into foreign stats.
 */
class ProfilerScope
{
  public:
    explicit ProfilerScope(Profiler *prof)
        : saved(detail::currentProfiler)
    {
        detail::currentProfiler = prof;
    }

    ~ProfilerScope() { detail::currentProfiler = saved; }

    ProfilerScope(const ProfilerScope &) = delete;
    ProfilerScope &operator=(const ProfilerScope &) = delete;

  private:
    Profiler *saved;
};

/**
 * RAII probe: times the rest of the enclosing block and charges
 * @p cat with the *exclusive* portion — elapsed minus the time nested
 * probes already claimed.  Nesting is tracked through the profiler's
 * scope stack, so categories partition wall time instead of double
 * counting it.
 */
class ProfScope
{
  public:
    explicit ProfScope(ProfCat cat)
        : prof(detail::currentProfiler), cat(cat)
    {
        if (!prof)
            return;
        // The remaining members are set up only on the armed path, so
        // a disarmed probe is one thread-local load and this branch.
        parent = prof->top;
        prof->top = this;
        childNs = 0;
        start = hostNowNs();
    }

    ~ProfScope()
    {
        if (!prof)
            return;
        const std::uint64_t elapsed = hostNowNs() - start;
        // Clock granularity can make children report more time than
        // the parent observed; clamp so self time never goes negative.
        prof->record(cat, elapsed - std::min(childNs, elapsed));
        prof->top = parent;
        if (parent)
            parent->childNs += elapsed;
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    Profiler *prof;
    ProfScope *parent;
    ProfCat cat;
    std::uint64_t start;
    std::uint64_t childNs;
};

} // namespace kindle::telemetry

/**
 * Self-profiler probe macro: times the rest of the enclosing block
 * under the given category.  Vanishes with -DKINDLE_TELEMETRY=0.
 *
 *   KINDLE_PROF_SCOPE(cache);
 */
#define KINDLE_PROF_CAT2_(a, b) a##b
#define KINDLE_PROF_CAT_(a, b) KINDLE_PROF_CAT2_(a, b)

#if KINDLE_TELEMETRY

#define KINDLE_PROF_SCOPE(cat)                                          \
    ::kindle::telemetry::ProfScope KINDLE_PROF_CAT_(kindleProf_,        \
                                                    __LINE__)(          \
        ::kindle::telemetry::ProfCat::cat)

#else // !KINDLE_TELEMETRY

#define KINDLE_PROF_SCOPE(cat) ((void)0)

#endif // KINDLE_TELEMETRY

#endif // KINDLE_TELEMETRY_PROFILER_HH
