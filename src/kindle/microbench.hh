/**
 * @file
 * Micro-benchmark programs used by the paper's process-persistence
 * evaluation (§III-A): sequential allocate-and-touch, strided sparse
 * allocation, and the munmap/mmap churn benchmark of Tables III/IV.
 *
 * Programs are pre-scripted Op vectors; ScriptBuilder provides the
 * small DSL used both here and in tests/examples.
 */

#ifndef KINDLE_KINDLE_MICROBENCH_HH
#define KINDLE_KINDLE_MICROBENCH_HH

#include <memory>
#include <vector>

#include "cpu/op.hh"

namespace kindle::micro
{

/** An OpStream over a pre-built script. */
class ScriptStream : public cpu::OpStream
{
  public:
    explicit ScriptStream(std::vector<cpu::Op> ops)
        : ops(std::move(ops))
    {}

    bool
    next(cpu::Op &op) override
    {
        if (cursor >= ops.size())
            return false;
        op = ops[cursor++];
        return true;
    }

    std::size_t size() const { return ops.size(); }

  private:
    std::vector<cpu::Op> ops;
    std::size_t cursor = 0;
};

/** Fluent builder for scripted programs. */
class ScriptBuilder
{
  public:
    /** mmap at a fixed address. */
    ScriptBuilder &mmapFixed(Addr addr, std::uint64_t size, bool nvm);

    ScriptBuilder &munmap(Addr addr, std::uint64_t size);
    ScriptBuilder &mremap(Addr addr, std::uint64_t old_size,
                          std::uint64_t new_size);
    ScriptBuilder &mprotect(Addr addr, std::uint64_t size,
                            std::uint32_t prot);

    /** One 8-byte store to the first word of every page in range. */
    ScriptBuilder &touchPages(Addr addr, std::uint64_t size);

    /** One 8-byte load from the first word of every page in range. */
    ScriptBuilder &readPages(Addr addr, std::uint64_t size);

    ScriptBuilder &read(Addr addr, std::uint64_t size = 8);
    ScriptBuilder &write(Addr addr, std::uint64_t size = 8);
    ScriptBuilder &compute(Cycles cycles);
    ScriptBuilder &faseStart();
    ScriptBuilder &faseEnd();
    ScriptBuilder &exit();

    std::unique_ptr<ScriptStream> build();

  private:
    std::vector<cpu::Op> ops;
};

/**
 * Figure 4a workload: mmap(MAP_NVM) an @p alloc_bytes region and
 * sequentially touch every page, then unmap.
 */
std::unique_ptr<ScriptStream> seqAllocTouch(std::uint64_t alloc_bytes,
                                            bool nvm = true);

/**
 * Figure 4b workload: @p count 4 KiB MAP_NVM allocations placed
 * @p stride_bytes apart (1 GiB / 2 MiB / 4 KiB in the paper), each
 * touched once, then unmapped.  Optional @p access_rounds of
 * read+compute extend the run across checkpoint intervals without
 * further page-table modifications.
 */
std::unique_ptr<ScriptStream> strideAlloc(std::uint64_t stride_bytes,
                                          unsigned count = 10,
                                          bool nvm = true,
                                          unsigned access_rounds = 0,
                                          Cycles round_compute = 30000);

/**
 * Tables III/IV workload: allocate a 512 MiB arena and touch it, then
 * @p rounds times munmap+mmap the first @p churn_bytes and access the
 * reallocated region @p access_rounds times, finally unmap everything.
 */
std::unique_ptr<ScriptStream> churnBench(std::uint64_t arena_bytes,
                                         std::uint64_t churn_bytes,
                                         unsigned rounds = 2,
                                         unsigned access_rounds = 1,
                                         bool nvm = true);

/** Base virtual address used by the scripted benchmarks. */
constexpr Addr scriptBase = Addr(0x400000000);

} // namespace kindle::micro

#endif // KINDLE_KINDLE_MICROBENCH_HH
