#include "kindle/kindle.hh"

#include "base/json.hh"
#include "base/logging.hh"
#include "base/trace_flags.hh"

namespace kindle
{

KindleSystem::KindleSystem(const KindleConfig &config_arg)
    : config(config_arg)
{
    trace::initFromEnv();

    // The page-table home follows the persistence scheme.
    if (config.persistence) {
        config.kernel.ptInNvm =
            config.persistence->scheme == persist::PtScheme::persistent;
    }

    mem_ = std::make_unique<mem::HybridMemory>(config.memory);
    caches_ = std::make_unique<cache::Hierarchy>(config.caches, *mem_);
    core_ = std::make_unique<cpu::Core>(config.core, sim, *mem_,
                                        *caches_);
    buildOsLayer();
}

KindleSystem::~KindleSystem()
{
    // Engines detach before the kernel they reference disappears.
    ssp_.reset();
    hscc_.reset();
    persist_.reset();
    kernel_.reset();
}

void
KindleSystem::buildOsLayer()
{
    kernel_ = std::make_unique<os::Kernel>(config.kernel, sim, *mem_,
                                           *caches_, *core_);
    if (config.persistence) {
        persist_ = std::make_unique<persist::PersistDomain>(
            *config.persistence, *kernel_);
        persist_->start();
    }
    if (config.ssp) {
        ssp_ = std::make_unique<ssp::SspEngine>(*config.ssp, *kernel_);
        ssp_->start();
    }
    if (config.hscc) {
        hscc_ = std::make_unique<hscc::HsccEngine>(*config.hscc,
                                                   *kernel_);
        hscc_->start();
    }
}

Tick
KindleSystem::run(std::unique_ptr<cpu::OpStream> program,
                  const std::string &name)
{
    kindle_assert(!isCrashed, "run() on a crashed machine");
    const Tick t0 = sim.now();
    kernel_->spawn(std::move(program), name);
    kernel_->run();
    return sim.now() - t0;
}

void
KindleSystem::crash()
{
    kindle_assert(!isCrashed, "double crash");
    isCrashed = true;

    // Stop the engines first so their events and hooks detach from
    // the dying kernel; their host-side indexes are volatile state.
    if (ssp_)
        ssp_->stop();
    if (hscc_)
        hscc_->stop();
    if (persist_)
        persist_->stop();
    ssp_.reset();
    hscc_.reset();
    persist_.reset();
    kernel_.reset();

    // Volatile hardware state disappears; durable NVM survives.
    caches_->invalidateAll();
    core_->reset();
    mem_->crash();
    sim.hardReset();
}

persist::RecoveryReport
KindleSystem::reboot()
{
    kindle_assert(isCrashed, "reboot without a crash");
    isCrashed = false;

    // Fresh kernel over the surviving NVM image.
    kernel_ = std::make_unique<os::Kernel>(config.kernel, sim, *mem_,
                                           *caches_, *core_);

    persist::RecoveryReport report;
    if (config.persistence) {
        report = persist::recover(*kernel_,
                                  config.persistence->scheme);
        persist_ = std::make_unique<persist::PersistDomain>(
            *config.persistence, *kernel_);
        persist_->start();
    }
    if (config.ssp) {
        ssp_ = std::make_unique<ssp::SspEngine>(*config.ssp, *kernel_);
        ssp_->start();
    }
    if (config.hscc) {
        hscc_ = std::make_unique<hscc::HsccEngine>(*config.hscc,
                                                   *kernel_);
        hscc_->start();
    }
    return report;
}

void
KindleSystem::acceptStats(statistics::StatVisitor &visitor) const
{
    mem_->stats().accept(visitor);
    caches_->stats().accept(visitor);
    core_->stats().accept(visitor);
    if (kernel_)
        kernel_->stats().accept(visitor);
    if (persist_)
        persist_->stats().accept(visitor);
    if (ssp_)
        ssp_->stats().accept(visitor);
    if (hscc_)
        hscc_->stats().accept(visitor);
}

void
KindleSystem::dumpStats(std::ostream &os) const
{
    statistics::TextSerializer text(os);
    acceptStats(text);
}

void
KindleSystem::dumpStatsJson(std::ostream &os) const
{
    json::Writer writer(os);
    writer.beginObject();
    statistics::JsonSerializer ser(writer);
    acceptStats(ser);
    writer.endObject();
    os << '\n';
}

statistics::StatSnapshot
KindleSystem::snapshotStats() const
{
    statistics::StatSnapshot snap;
    statistics::StatSnapshot::Builder builder(snap);
    acceptStats(builder);
    return snap;
}

} // namespace kindle
