#include "kindle/kindle.hh"

#include <fstream>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "base/trace_flags.hh"
#include "os/reclaim.hh"

namespace kindle
{

KindleSystem::KindleSystem(const KindleConfig &config_arg)
    : config(config_arg),
      recoveryStats("recovery",
                    "crash recovery outcomes (cumulative over reboots)"),
      reboots(recoveryStats.addScalar("reboots", "reboot() calls")),
      recoveredProcs(recoveryStats.addScalar(
          "processesRecovered", "processes restored by recovery")),
      quarantinedProcs(recoveryStats.addScalar(
          "processesQuarantined", "slots fenced off by recovery")),
      framesReclaimed(recoveryStats.addScalar(
          "framesReclaimed", "leaked NVM frames reclaimed")),
      tornPtRolledBack(recoveryStats.addScalar(
          "tornPtStoresRolledBack", "torn PTE stores undone")),
      recoveryErrors(recoveryStats.addScalar(
          "errors", "classified recovery errors")),
      recoveryDuration(recoveryStats.addHistogram(
          "duration", "per-reboot recovery ticks"))
{
    trace::initFromEnv();

    // The sink registers before any component exists, so spans and
    // crash-site breadcrumbs emitted during construction, boot and
    // teardown all land in this system's ring.
    traceSink_ = std::make_unique<trace::TraceSink>(
        config.trace, [this] { return sim.now(); });
    traceScope_ =
        std::make_unique<trace::SinkScope>(traceSink_.get());

    // The page-table home follows the persistence scheme.
    if (config.persistence) {
        config.kernel.ptInNvm =
            config.persistence->scheme == persist::PtScheme::persistent;
    }

    // The fault plan's media sub-config rides into the memory system;
    // the medium is hardware, so this is construction-time only.
    if (config.fault)
        config.memory.media = config.fault->media;

    // A pressure plan rides into the kernel and turns on write-buffer
    // stall telemetry (pressure shows up first as controller stalls).
    if (config.pressure) {
        config.kernel.pressure = *config.pressure;
        config.memory.dramCtrl.trackStalls = true;
        config.memory.nvmCtrl.trackStalls = true;
    }

    // A core-fault plan rides into the kernel.  It lives in `config`,
    // so reboot()'s fresh kernel re-arms it: dead hardware stays dead
    // across boots of the same machine.
    if (config.coreFault)
        config.kernel.coreFaults = *config.coreFault;

    // The injector exists even when no fault is configured: an unarmed
    // plan just counts probe hits (observe mode).  Registering it on
    // the thread-local routing stack also shadows any outer system's
    // injector for the lifetime of this one.
    injector_ = std::make_unique<fault::CrashInjector>(
        config.fault.value_or(fault::FaultPlan{}),
        [this] { return sim.now(); });
    injectorScope_ =
        std::make_unique<fault::InjectorScope>(injector_.get());

    // The self-profiler exists only on request: prof.* stats are
    // wall-clock derived and nondeterministic, and the BENCH JSON
    // contract requires default stat dumps never to contain them.
    // The scope registers even when null so this system shadows any
    // outer profiled system on the thread (mirrors SinkScope).
    if (config.profiling)
        profiler_ = std::make_unique<telemetry::Profiler>();
    profilerScope_ =
        std::make_unique<telemetry::ProfilerScope>(profiler_.get());

    const unsigned n = std::max(1u, config.numCores);
    mem_ = std::make_unique<mem::HybridMemory>(config.memory);
    caches_ = std::make_unique<cache::Hierarchy>(config.caches, *mem_,
                                                 n);
    // One core keeps the historical "core" stat-group name; an SMP
    // machine names them "cpu0".."cpuN-1" and grows an aggregate
    // rollup (see acceptStats).
    for (unsigned c = 0; c < n; ++c) {
        cores_.push_back(std::make_unique<cpu::Core>(
            config.core, sim, *mem_, *caches_, c,
            n == 1 ? std::string("core") : csprintf("cpu{}", c)));
    }

    // The scrubber lives with the machine (stats accumulate across
    // reboots); its retirement handler dereferences the *current*
    // kernel, so no rebinding is needed after reboot().
    if (mem_->media() || config.scrub) {
        scrubber_ = std::make_unique<mem::PatrolScrubber>(
            sim, *mem_, config.scrub.value_or(mem::ScrubParams{}));
        scrubber_->setBadFrameHandler(
            [this](Addr frame, const char *reason) {
                kernel_->retireNvmFrame(frame, reason);
            });
    }

    buildOsLayer();
    if (scrubber_)
        scrubber_->start();
    buildSampler();

    // Activate only after boot so construction-time durable writes do
    // not consume trigger budget.
    injector_->activate();
}

KindleSystem::~KindleSystem()
{
    // Engines detach before the kernel they reference disappears.
    ssp_.reset();
    hscc_.reset();
    persist_.reset();
    kernel_.reset();
}

std::vector<cpu::Core *>
KindleSystem::corePtrs() const
{
    std::vector<cpu::Core *> ptrs;
    ptrs.reserve(cores_.size());
    for (const auto &c : cores_)
        ptrs.push_back(c.get());
    return ptrs;
}

void
KindleSystem::buildOsLayer()
{
    kernel_ = std::make_unique<os::Kernel>(config.kernel, sim, *mem_,
                                           *caches_, corePtrs());
    if (config.persistence) {
        persist_ = std::make_unique<persist::PersistDomain>(
            *config.persistence, *kernel_);
        persist_->start();
    }
    if (config.ssp) {
        ssp_ = std::make_unique<ssp::SspEngine>(*config.ssp, *kernel_);
        ssp_->start();
    }
    if (config.hscc) {
        hscc_ = std::make_unique<hscc::HsccEngine>(*config.hscc,
                                                   *kernel_);
        hscc_->start();
    }
    wirePressureHooks();
}

void
KindleSystem::buildSampler()
{
    if (config.telemetry.sampleInterval == 0)
        return;
    sampler_ = std::make_unique<telemetry::Sampler>(
        sim, config.telemetry, [this] { return snapshotStats(); });
    using Kind = telemetry::Sampler::Kind;

    // Levels: the machine's occupancy picture at the sample instant.
    sampler_->addStatChannel("dramFramesUsed", Kind::level,
                             "kernel.dramAlloc.framesInUse");
    sampler_->addStatChannel("nvmFramesUsed", Kind::level,
                             "kernel.nvmAlloc.framesInUse");
    sampler_->addCallbackChannel(
        "residentPages", Kind::level, [this] {
            return kernel_ ? static_cast<double>(
                                 kernel_->residentPagesTotal())
                           : 0.0;
        });
    sampler_->addCallbackChannel("runnable", Kind::level, [this] {
        return kernel_
                   ? static_cast<double>(kernel_->runnableCount())
                   : 0.0;
    });
    // Fleet-scale population and per-tier occupancy: how many tenants
    // are alive and what fraction of each zone they hold.
    sampler_->addCallbackChannel("liveProcs", Kind::level, [this] {
        return kernel_
                   ? static_cast<double>(kernel_->liveProcessCount())
                   : 0.0;
    });
    sampler_->addCallbackChannel("dramOccupancy", Kind::level, [this] {
        if (!kernel_)
            return 0.0;
        const os::FrameAllocator &a = kernel_->dramAllocator();
        return static_cast<double>(a.allocatedFrames()) /
               static_cast<double>(a.totalFrames());
    });
    sampler_->addCallbackChannel("nvmOccupancy", Kind::level, [this] {
        if (!kernel_)
            return 0.0;
        const os::FrameAllocator &a = kernel_->nvmAllocator();
        return static_cast<double>(a.allocatedFrames()) /
               static_cast<double>(a.totalFrames());
    });
    if (config.persistence) {
        sampler_->addCallbackChannel(
            "redoLogPending", Kind::level, [this] {
                return persist_ ? static_cast<double>(
                                      persist_->redoLog().pending())
                                : 0.0;
            });
    }

    // Rates: per-interval activity deltas.  Paths that do not exist
    // in a sample (lazily-registered stats, unconfigured subsystems)
    // read as zero, so channels can cover optional machinery.
    sampler_->addStatChannel("pageFaults", Kind::rate,
                             "kernel.pageFaults");
    sampler_->addStatChannel("reclaimDemotions", Kind::rate,
                             "kernel.reclaim.pagesDemoted");
    sampler_->addStatChannel("shootdownIpis", Kind::rate,
                             "kernel.tlbShootdownIpis");
    if (config.persistence) {
        sampler_->addStatChannel("checkpoints", Kind::rate,
                                 "persist.checkpoints");
    }
    if (config.hscc) {
        sampler_->addStatChannel("hsccMigrations", Kind::rate,
                                 "hscc.pagesMigrated");
    }
    sampler_->start();
}

void
KindleSystem::wirePressureHooks()
{
    if (!config.pressure || !persist_)
        return;
    // Redo-log high water pulls the next checkpoint forward before
    // the log can wrap; the early checkpoint truncates the log and
    // compacts dead saved-state slots.
    if (config.pressure->redoHighWaterFraction > 0.0) {
        persist_->enableBackpressure(
            config.pressure->redoHighWaterFraction);
    }
    // NVM-zone pressure has no page-level relief valve; the reclaim
    // engine asks the persistence domain to shed metadata instead.
    if (auto *rec = kernel_->reclaimEngine()) {
        rec->setCheckpointHook([this] {
            if (persist_)
                persist_->requestEarlyCheckpoint();
        });
    }
}

Tick
KindleSystem::run(std::unique_ptr<cpu::OpStream> program,
                  const std::string &name)
{
    if (isCrashed) {
        kindle_fatal("KindleSystem::run() between crash() and "
                     "reboot() — the machine has no OS; call reboot() "
                     "to recover the durable image first");
    }
    const Tick t0 = sim.now();
    kernel_->spawn(std::move(program), name);
    try {
        kernel_->run();
    } catch (const fault::PowerLoss &) {
        autoFlightDump("power-loss");
        throw;
    }
    return sim.now() - t0;
}

void
KindleSystem::runAll()
{
    if (isCrashed) {
        kindle_fatal("KindleSystem::runAll() between crash() and "
                     "reboot() — the machine has no OS; call reboot() "
                     "to recover the durable image first");
    }
    try {
        kernel_->run();
    } catch (const fault::PowerLoss &) {
        autoFlightDump("power-loss");
        throw;
    }
}

mem::PowerLossModel
KindleSystem::lossModel() const
{
    mem::PowerLossModel loss;
    if (config.fault) {
        loss.tornStore = config.fault->tornStore;
        loss.seed = config.fault->seed;
    }
    return loss;
}

void
KindleSystem::teardownToCrashed()
{
    // Volatile hardware state disappears; durable NVM survives —
    // except the lines still queued in the controller write buffer,
    // which are lost (and possibly torn) by the power-loss model.
    // Media error state is physical and survives untouched.
    if (scrubber_)
        scrubber_->stop();
    caches_->invalidateAll();
    for (auto &core : cores_)
        core->reset();
    crashOutcome = mem_->crash(sim.now(), lossModel());
    sim.hardReset();

    // The injector's job is done once the crash lands; silence the
    // probes until the post-reboot system is whole again.
    injector_->deactivate();
}

void
KindleSystem::crash()
{
    kindle_assert(!isCrashed, "double crash");
    isCrashed = true;

    // Stop the engines first so their events and hooks detach from
    // the dying kernel; their host-side indexes are volatile state.
    if (ssp_)
        ssp_->stop();
    if (hscc_)
        hscc_->stop();
    if (persist_)
        persist_->stop();
    ssp_.reset();
    hscc_.reset();
    persist_.reset();
    kernel_.reset();

    teardownToCrashed();
}

persist::RecoveryReport
KindleSystem::reboot()
{
    kindle_assert(isCrashed, "reboot without a crash");
    isCrashed = false;

    // Fresh kernel over the surviving NVM image.
    kernel_ = std::make_unique<os::Kernel>(config.kernel, sim, *mem_,
                                           *caches_, corePtrs());

    persist::RecoveryReport report;
    if (config.persistence) {
        try {
            report = persist::recover(*kernel_,
                                      config.persistence->scheme);
        } catch (const fault::PowerLoss &) {
            // Power failed *during recovery* (a re-armed injector
            // tripped one of the recover.* probes).  The half-booted
            // machine dies exactly like any other crash; the durable
            // image — including whatever recovery managed to persist
            // — is what the next reboot() starts from.
            autoFlightDump("power-loss-in-recovery");
            kernel_.reset();
            teardownToCrashed();
            isCrashed = true;
            throw;
        }
        persist_ = std::make_unique<persist::PersistDomain>(
            *config.persistence, *kernel_);
        persist_->start();
    }
    if (config.ssp) {
        ssp_ = std::make_unique<ssp::SspEngine>(*config.ssp, *kernel_);
        ssp_->start();
    }
    if (config.hscc) {
        hscc_ = std::make_unique<hscc::HsccEngine>(*config.hscc,
                                                   *kernel_);
        hscc_->start();
    }
    if (scrubber_)
        scrubber_->start();
    // The crash cleared the sampler's pending event with the rest of
    // the queue; resume it over the rebooted machine (rate baselines
    // re-prime, since the fresh kernel's counters restarted).
    if (sampler_)
        sampler_->restart();
    wirePressureHooks();

    // The injector stays deactivated: its one armed crash has fired
    // (or been skipped), and recovery/rerun probes must not refire it.
    ++reboots;
    recoveredProcs += static_cast<double>(report.processesRecovered);
    quarantinedProcs +=
        static_cast<double>(report.processesQuarantined);
    framesReclaimed += static_cast<double>(report.framesReclaimed);
    tornPtRolledBack +=
        static_cast<double>(report.tornPtStoresRolledBack);
    recoveryErrors += static_cast<double>(report.errors.size());
    recoveryDuration.sample(
        static_cast<double>(report.recoveryTicks));
    lastRecovery_ = report;
    if (!report.errors.empty())
        autoFlightDump("recovery-error");
    return report;
}

void
KindleSystem::armFault(const fault::FaultPlan &plan)
{
    config.fault = plan;
    injector_->rearm(plan);
}

namespace
{

/**
 * Builds a counters-only mirror of a stat tree: same group structure,
 * same scalar names/descriptions, no gauges/distributions/histograms
 * (extrema and shapes do not sum meaningfully across cores).  The
 * scalars are collected in canonical visit order so an Accumulator
 * pass over a structurally identical tree can match them by index.
 */
class MirrorBuilder : public statistics::StatVisitor
{
  public:
    MirrorBuilder(
        statistics::StatGroup &root,
        std::vector<std::unique_ptr<statistics::StatGroup>> &owned,
        std::vector<statistics::Scalar *> &slots)
        : owned(owned), slots(slots)
    {
        stack.push_back(&root);
    }

    void
    beginGroup(const std::string &name,
               const std::string &desc) override
    {
        ++depth;
        if (depth == 1)
            return;  // the source root maps onto the mirror root
        owned.push_back(
            std::make_unique<statistics::StatGroup>(name, desc));
        stack.back()->addChild(*owned.back());
        stack.push_back(owned.back().get());
    }

    void
    endGroup() override
    {
        if (depth > 1)
            stack.pop_back();
        --depth;
    }

    void
    visitScalar(const std::string &name, const std::string &desc,
                const statistics::Scalar &) override
    {
        slots.push_back(&stack.back()->addScalar(name, desc));
    }

    void visitGauge(const std::string &, const std::string &,
                    const statistics::Gauge &) override
    {}
    void visitDistribution(const std::string &, const std::string &,
                           const statistics::Distribution &) override
    {}
    void visitHistogram(const std::string &, const std::string &,
                        const statistics::Histogram &) override
    {}

  private:
    std::vector<std::unique_ptr<statistics::StatGroup>> &owned;
    std::vector<statistics::Scalar *> &slots;
    std::vector<statistics::StatGroup *> stack;
    unsigned depth = 0;
};

/** Adds every scalar of a tree into the mirror's slots, in order. */
class MirrorAccumulator : public statistics::StatVisitor
{
  public:
    explicit MirrorAccumulator(
        const std::vector<statistics::Scalar *> &slots)
        : slots(slots)
    {}

    void beginGroup(const std::string &, const std::string &) override
    {}
    void endGroup() override {}

    void
    visitScalar(const std::string &, const std::string &,
                const statistics::Scalar &stat) override
    {
        kindle_assert(idx < slots.size(),
                      "core stat trees diverged under the rollup");
        *slots[idx++] += stat.value();
    }

    void visitGauge(const std::string &, const std::string &,
                    const statistics::Gauge &) override
    {}
    void visitDistribution(const std::string &, const std::string &,
                           const statistics::Distribution &) override
    {}
    void visitHistogram(const std::string &, const std::string &,
                        const statistics::Histogram &) override
    {}

  private:
    const std::vector<statistics::Scalar *> &slots;
    std::size_t idx = 0;
};

} // namespace

void
KindleSystem::acceptStats(statistics::StatVisitor &visitor) const
{
    mem_->stats().accept(visitor);
    if (scrubber_)
        scrubber_->stats().accept(visitor);
    caches_->stats().accept(visitor);
    for (const auto &core : cores_)
        core->stats().accept(visitor);
    if (cores_.size() > 1) {
        // Aggregate rollup: "core.*" becomes the machine-wide sum of
        // the per-cpu counters, so cross-config tooling keyed on the
        // uniprocessor names keeps working against SMP runs.
        if (!coreAggregate_) {
            coreAggregate_ = std::make_unique<statistics::StatGroup>(
                "core", "aggregate over all cpus");
            MirrorBuilder builder(*coreAggregate_, aggregateChildren_,
                                  aggregateSlots_);
            cores_[0]->stats().accept(builder);
        }
        coreAggregate_->resetAll();
        for (const auto &core : cores_) {
            MirrorAccumulator acc(aggregateSlots_);
            core->stats().accept(acc);
        }
        coreAggregate_->accept(visitor);
    }
    if (kernel_)
        kernel_->stats().accept(visitor);
    if (persist_)
        persist_->stats().accept(visitor);
    if (ssp_)
        ssp_->stats().accept(visitor);
    if (hscc_)
        hscc_->stats().accept(visitor);
    injector_->stats().accept(visitor);
    recoveryStats.accept(visitor);
    if (profiler_)
        profiler_->stats().accept(visitor);
}

void
KindleSystem::dumpStats(std::ostream &os) const
{
    statistics::TextSerializer text(os);
    acceptStats(text);
}

void
KindleSystem::dumpStatsJson(std::ostream &os) const
{
    json::Writer writer(os);
    writer.beginObject();
    statistics::JsonSerializer ser(writer);
    acceptStats(ser);
    writer.endObject();
    os << '\n';
}

statistics::StatSnapshot
KindleSystem::snapshotStats() const
{
    statistics::StatSnapshot snap;
    statistics::StatSnapshot::Builder builder(snap);
    acceptStats(builder);
    return snap;
}

namespace
{

/** One-line human summary of a fault plan for flight-recorder dumps. */
std::string
describePlan(const std::optional<fault::FaultPlan> &plan)
{
    if (!plan)
        return "none";
    const fault::FaultPlan &p = *plan;
    std::string out;
    if (!p.site.empty())
        out = csprintf("site={}#{}", p.site, p.occurrence);
    else if (p.atNthDurableWrite != 0)
        out = csprintf("durable-write#{}", p.atNthDurableWrite);
    else if (p.atTick != 0)
        out = csprintf("at-tick={}", p.atTick);
    else
        out = "unarmed";
    out += csprintf(" torn={} seed={}", p.tornStore ? 1 : 0, p.seed);
    if (p.media.enabled()) {
        out += csprintf(" media(flip={} endurance={} targeted={})",
                        p.media.bitFlipRate, p.media.writeEndurance,
                        p.media.faults.size());
    }
    return out;
}

} // namespace

void
KindleSystem::writeTrace(std::ostream &os) const
{
    traceSink_->writeChromeJson(os);
}

void
KindleSystem::writeTelemetry(std::ostream &os, bool csv) const
{
    if (!sampler_)
        return;
    if (csv)
        sampler_->writeCsv(os);
    else
        sampler_->writeJson(os);
}

void
KindleSystem::dumpFlightRecorder(std::ostream &os,
                                 const std::string &reason) const
{
    trace::FlightContext ctx;
    ctx.reason = reason;
    ctx.crashSite = injector_->firedSite();
    ctx.tick = sim.now();
    ctx.faultPlan = describePlan(config.fault);
    traceSink_->writeFlightRecorder(os, ctx);
}

void
KindleSystem::autoFlightDump(const std::string &reason) const
{
    const std::string &path = config.trace.flightDumpPath;
    if (path.empty())
        return;
    std::ofstream out(path);
    if (!out) {
        warn("cannot write flight-recorder dump to '{}'", path);
        return;
    }
    dumpFlightRecorder(out, reason);
}

} // namespace kindle
