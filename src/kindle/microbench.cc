#include "kindle/microbench.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace kindle::micro
{

ScriptBuilder &
ScriptBuilder::mmapFixed(Addr addr, std::uint64_t size, bool nvm)
{
    cpu::Op op;
    op.kind = cpu::Op::Kind::mmap;
    op.addr = addr;
    op.size = size;
    op.flags = cpu::mapFixed | (nvm ? cpu::mapNvm : 0);
    ops.push_back(op);
    return *this;
}

ScriptBuilder &
ScriptBuilder::munmap(Addr addr, std::uint64_t size)
{
    cpu::Op op;
    op.kind = cpu::Op::Kind::munmap;
    op.addr = addr;
    op.size = size;
    ops.push_back(op);
    return *this;
}

ScriptBuilder &
ScriptBuilder::mremap(Addr addr, std::uint64_t old_size,
                      std::uint64_t new_size)
{
    cpu::Op op;
    op.kind = cpu::Op::Kind::mremap;
    op.addr = addr;
    op.size = old_size;
    op.flags = static_cast<std::uint32_t>(new_size >> pageShift);
    // The kernel's dispatch interprets flags as the new size in pages
    // for mremap ops (Op has only one spare field wide enough).
    ops.push_back(op);
    return *this;
}

ScriptBuilder &
ScriptBuilder::mprotect(Addr addr, std::uint64_t size,
                        std::uint32_t prot)
{
    cpu::Op op;
    op.kind = cpu::Op::Kind::mprotect;
    op.addr = addr;
    op.size = size;
    op.flags = prot;
    ops.push_back(op);
    return *this;
}

ScriptBuilder &
ScriptBuilder::touchPages(Addr addr, std::uint64_t size)
{
    for (Addr a = addr; a < addr + size; a += pageSize)
        write(a);
    return *this;
}

ScriptBuilder &
ScriptBuilder::readPages(Addr addr, std::uint64_t size)
{
    for (Addr a = addr; a < addr + size; a += pageSize)
        read(a);
    return *this;
}

ScriptBuilder &
ScriptBuilder::read(Addr addr, std::uint64_t size)
{
    cpu::Op op;
    op.kind = cpu::Op::Kind::read;
    op.addr = addr;
    op.size = size;
    ops.push_back(op);
    return *this;
}

ScriptBuilder &
ScriptBuilder::write(Addr addr, std::uint64_t size)
{
    cpu::Op op;
    op.kind = cpu::Op::Kind::write;
    op.addr = addr;
    op.size = size;
    ops.push_back(op);
    return *this;
}

ScriptBuilder &
ScriptBuilder::compute(Cycles cycles)
{
    cpu::Op op;
    op.kind = cpu::Op::Kind::compute;
    op.size = cycles;
    ops.push_back(op);
    return *this;
}

ScriptBuilder &
ScriptBuilder::faseStart()
{
    cpu::Op op;
    op.kind = cpu::Op::Kind::faseStart;
    ops.push_back(op);
    return *this;
}

ScriptBuilder &
ScriptBuilder::faseEnd()
{
    cpu::Op op;
    op.kind = cpu::Op::Kind::faseEnd;
    ops.push_back(op);
    return *this;
}

ScriptBuilder &
ScriptBuilder::exit()
{
    cpu::Op op;
    op.kind = cpu::Op::Kind::exit;
    ops.push_back(op);
    return *this;
}

std::unique_ptr<ScriptStream>
ScriptBuilder::build()
{
    return std::make_unique<ScriptStream>(std::move(ops));
}

std::unique_ptr<ScriptStream>
seqAllocTouch(std::uint64_t alloc_bytes, bool nvm)
{
    kindle_assert(isAligned(alloc_bytes, pageSize),
                  "allocation must be page aligned");
    ScriptBuilder b;
    b.mmapFixed(scriptBase, alloc_bytes, nvm);
    b.touchPages(scriptBase, alloc_bytes);
    b.munmap(scriptBase, alloc_bytes);
    b.exit();
    return b.build();
}

std::unique_ptr<ScriptStream>
strideAlloc(std::uint64_t stride_bytes, unsigned count, bool nvm,
            unsigned access_rounds, Cycles round_compute)
{
    kindle_assert(stride_bytes >= pageSize, "stride below page size");
    ScriptBuilder b;
    for (unsigned i = 0; i < count; ++i)
        b.mmapFixed(scriptBase + i * stride_bytes, pageSize, nvm);
    for (unsigned i = 0; i < count; ++i)
        b.write(scriptBase + i * stride_bytes);
    for (unsigned r = 0; r < access_rounds; ++r) {
        for (unsigned i = 0; i < count; ++i)
            b.read(scriptBase + i * stride_bytes);
        b.compute(round_compute);
    }
    for (unsigned i = 0; i < count; ++i)
        b.munmap(scriptBase + i * stride_bytes, pageSize);
    b.exit();
    return b.build();
}

std::unique_ptr<ScriptStream>
churnBench(std::uint64_t arena_bytes, std::uint64_t churn_bytes,
           unsigned rounds, unsigned access_rounds, bool nvm)
{
    kindle_assert(churn_bytes <= arena_bytes,
                  "churn larger than the arena");
    ScriptBuilder b;
    // Arena setup: map and make every PTE valid.
    b.mmapFixed(scriptBase, arena_bytes, nvm);
    b.touchPages(scriptBase, arena_bytes);

    for (unsigned r = 0; r < rounds; ++r) {
        // Free a fixed size from the start, reallocate it ...
        b.munmap(scriptBase, churn_bytes);
        b.mmapFixed(scriptBase, churn_bytes, nvm);
        // ... and access the reallocated region (multiple rounds to
        // force TLB misses in the Table IV variant).
        for (unsigned a = 0; a < access_rounds; ++a)
            b.readPages(scriptBase, churn_bytes);
    }

    b.munmap(scriptBase, arena_bytes);
    b.exit();
    return b.build();
}

} // namespace kindle::micro
