/**
 * @file
 * The Kindle public API: one object assembling the full system.
 *
 * KindleSystem wires together the simulation kernel, the hybrid
 * DRAM+NVM memory, the cache hierarchy, the in-order core, the gemOS
 * kernel, and — when configured — the process-persistence domain and
 * the SSP/HSCC prototype engines.  It also owns the crash/reboot
 * protocol: crash() drops every volatile structure while the NVM
 * durable image survives, and reboot() boots a fresh OS that runs the
 * recovery procedure over that image.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   kindle::KindleConfig cfg;
 *   cfg.persistence = kindle::persist::PersistParams{};
 *   kindle::KindleSystem sys(cfg);
 *   sys.kernel().spawn(std::move(program), "init");
 *   sys.runAll();
 */

#ifndef KINDLE_KINDLE_KINDLE_HH
#define KINDLE_KINDLE_KINDLE_HH

#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "base/stats.hh"
#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "fault/fault.hh"
#include "hscc/hscc_engine.hh"
#include "mem/hybrid_memory.hh"
#include "mem/scrubber.hh"
#include "os/kernel.hh"
#include "persist/checkpoint.hh"
#include "persist/recovery.hh"
#include "sim/simulation.hh"
#include "ssp/ssp_engine.hh"
#include "telemetry/profiler.hh"
#include "telemetry/telemetry.hh"
#include "trace/trace.hh"

namespace kindle
{

/** Whole-system configuration. */
struct KindleConfig
{
    mem::HybridMemoryParams memory{};
    cache::HierarchyParams caches{};
    cpu::CoreParams core{};
    os::KernelParams kernel{};

    /**
     * Number of CPU cores.  Every core gets its own TLB, page walker
     * and private L1/L2; the LLC is shared and kept coherent by a
     * MESI-lite directory.  At 1 (the default) the machine is
     * bit-identical to the original uniprocessor model — no directory,
     * no IPIs, the classic stat-tree layout.
     */
    unsigned numCores = 1;

    /** Enable process persistence with these parameters. */
    std::optional<persist::PersistParams> persistence;

    /** Enable the SSP prototype. */
    std::optional<ssp::SspParams> ssp;

    /** Enable the HSCC prototype. */
    std::optional<hscc::HsccParams> hscc;

    /**
     * Arm one injected power-loss crash (see fault::FaultPlan).  An
     * unarmed plan still counts site hits and durable writes, which is
     * how the fuzz harness sizes its crash-point space.  The plan's
     * media sub-config (bit-flip rate, endurance, targeted faults) is
     * forwarded into the memory system at construction.
     */
    std::optional<fault::FaultPlan> fault;

    /**
     * Arm a memory-pressure plan (see fault::PressurePlan): shrunken
     * zones, injected transient allocation failures, watermark-driven
     * reclaim, checkpoint/redo backpressure, and the OOM killer.  The
     * plan is forwarded into the kernel, enables write-buffer stall
     * tracking on both memory controllers, and — when persistence is
     * also configured — arms redo-log backpressure and routes the
     * reclaim engine's NVM-pressure relief to early checkpoints.
     * Survives reboot(): the same pressure regime governs every boot.
     */
    std::optional<fault::PressurePlan> pressure;

    /**
     * Arm seeded CPU-core faults (see fault::CoreFaultPlan): chosen
     * cores fail-stop or transiently stall at a tick / Nth-received-IPI
     * trigger, exercising the kernel's IPI ack-timeout/retry protocol
     * and hotplug-style offlining.  Survives reboot(): dead hardware
     * stays dead, so the same core re-fails on every boot of the same
     * configuration.  Requires numCores >= 2 (a fail-stop of the last
     * core halts the machine).
     */
    std::optional<fault::CoreFaultPlan> coreFault;

    /**
     * Patrol-scrubber cadence.  The scrubber is built whenever the
     * media model is enabled (using defaults if this is unset); set
     * this to tune the patrol interval/chunk or to run the scrubber
     * without media faults (it then simply idles).
     */
    std::optional<mem::ScrubParams> scrub;

    /**
     * Telemetry capture (see trace::TraceParams).  The flight-recorder
     * ring is on by default; span collection for Chrome-JSON export is
     * opt-in because it keeps every record of the run.
     */
    trace::TraceParams trace{};

    /**
     * Time-series sampling (see telemetry::TelemetryParams).  Off by
     * default (sampleInterval == 0): no sampler event is scheduled and
     * runs stay byte-identical to an unsampled tree.
     */
    telemetry::TelemetryParams telemetry{};

    /**
     * Attach the host-side self-profiler (--prof).  Off by default:
     * prof.* stats are wall-clock derived and nondeterministic, so
     * they must never appear in a default-config stat dump.
     */
    bool profiling = false;
};

/** The assembled machine. */
class KindleSystem
{
  public:
    explicit KindleSystem(const KindleConfig &config);
    ~KindleSystem();

    KindleSystem(const KindleSystem &) = delete;
    KindleSystem &operator=(const KindleSystem &) = delete;

    /** @name Component access. */
    /// @{
    sim::Simulation &simulation() { return sim; }
    mem::HybridMemory &memory() { return *mem_; }
    cache::Hierarchy &caches() { return *caches_; }

    /** Core @p cpu of the machine (0 <= cpu < numCores()). */
    cpu::Core &core(CpuId cpu) { return *cores_.at(cpu); }
    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    os::Kernel &kernel() { return *kernel_; }

    /** Null when the feature is not configured. */
    persist::PersistDomain *persistence() { return persist_.get(); }
    ssp::SspEngine *sspEngine() { return ssp_.get(); }
    hscc::HsccEngine *hsccEngine() { return hscc_.get(); }

    /** The patrol scrubber (null unless media/scrub configured). */
    mem::PatrolScrubber *scrubber() { return scrubber_.get(); }

    /** The system's crash injector (always present; may be unarmed). */
    fault::CrashInjector &injector() { return *injector_; }

    /** The system's trace sink (always present; may be capturing
     *  nothing when both spans and the ring are disabled). */
    trace::TraceSink &traceSink() { return *traceSink_; }

    /** The time-series sampler (null unless sampleInterval > 0). */
    telemetry::Sampler *sampler() { return sampler_.get(); }

    /** The self-profiler (null unless config.profiling). */
    telemetry::Profiler *profiler() { return profiler_.get(); }
    /// @}

    /** Current simulated time. */
    Tick now() const { return sim.now(); }

    /**
     * Spawn a program and run the machine until everything exits.
     * Fatal on a crashed machine; if an armed fault fires mid-run,
     * fault::PowerLoss propagates to the caller, who then drives the
     * crash()/reboot() protocol.
     */
    Tick run(std::unique_ptr<cpu::OpStream> program,
             const std::string &name);

    /** Run until all processes exit. */
    void runAll();

    /**
     * Power failure at the current instant: caches, TLBs, DRAM, MSRs,
     * the OS and pending events all vanish; only durable NVM content
     * survives.  The system is unusable until reboot().
     */
    void crash();

    /**
     * Boot a fresh OS over the surviving NVM image and, if
     * persistence is configured, run the recovery procedure and
     * restart the persistence domain.
     */
    persist::RecoveryReport reboot();

    /**
     * Swap in a fresh fault plan and re-arm the (possibly fired)
     * injector.  This is how tests crash a machine a *second* time —
     * in particular inside the next reboot()'s recovery path, which
     * is the recovery-idempotence scenario.  The plan's media config
     * does not rebuild the media model (the medium is hardware).
     */
    void armFault(const fault::FaultPlan &plan);

    /** True between crash() and reboot(). */
    bool crashed() const { return isCrashed; }

    /** What the last crash() did to the controller write buffer. */
    const mem::CrashOutcome &lastCrashOutcome() const
    {
        return crashOutcome;
    }

    /** The report from the last reboot()'s recovery pass. */
    const persist::RecoveryReport &lastRecovery() const
    {
        return lastRecovery_;
    }

    /**
     * Drive @p visitor over every component's stat tree (memory,
     * caches, core, kernel, persistence/SSP/HSCC when configured) in
     * the fixed dump order.  Serializers, snapshots and ad-hoc stat
     * queries all build on this.
     */
    void acceptStats(statistics::StatVisitor &visitor) const;

    /** Dump the complete statistics tree as text. */
    void dumpStats(std::ostream &os) const;

    /** Dump the complete statistics tree as one JSON object. */
    void dumpStatsJson(std::ostream &os) const;

    /** Capture every stat as a flat path→value snapshot. */
    statistics::StatSnapshot snapshotStats() const;

    /** Export collected spans as Chrome trace-event JSON. */
    void writeTrace(std::ostream &os) const;

    /**
     * Export the sampler's time series; @p csv picks the format.
     * No-op (writes nothing) when the sampler is off.
     */
    void writeTelemetry(std::ostream &os, bool csv = false) const;

    /**
     * Dump the flight-recorder ring as JSON, annotated with @p reason
     * ("power-loss", "oracle-divergence", ...), the armed fault plan
     * and the crash site that fired (if any).  Harness code calls
     * this on failures the system cannot see itself — e.g. the fuzz
     * oracle diverging; power losses and recovery errors dump
     * automatically when trace.flightDumpPath is configured.
     */
    void dumpFlightRecorder(std::ostream &os,
                            const std::string &reason) const;

  private:
    void buildOsLayer();
    void buildSampler();
    void wirePressureHooks();
    mem::PowerLossModel lossModel() const;
    void teardownToCrashed();
    std::vector<cpu::Core *> corePtrs() const;

    /** Write the flight recorder to trace.flightDumpPath, if set. */
    void autoFlightDump(const std::string &reason) const;

    KindleConfig config;

    sim::Simulation sim;

    // The trace sink, the injector and their thread-local
    // registrations outlive every component that can fire a probe or
    // emit a span (members destroy in reverse order, so the scopes
    // unregister only after the OS layer is gone).
    std::unique_ptr<trace::TraceSink> traceSink_;
    std::unique_ptr<trace::SinkScope> traceScope_;
    std::unique_ptr<fault::CrashInjector> injector_;
    std::unique_ptr<fault::InjectorScope> injectorScope_;
    std::unique_ptr<telemetry::Profiler> profiler_;
    std::unique_ptr<telemetry::ProfilerScope> profilerScope_;

    std::unique_ptr<mem::HybridMemory> mem_;
    std::unique_ptr<mem::PatrolScrubber> scrubber_;
    std::unique_ptr<cache::Hierarchy> caches_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::unique_ptr<os::Kernel> kernel_;
    std::unique_ptr<persist::PersistDomain> persist_;
    std::unique_ptr<ssp::SspEngine> ssp_;
    std::unique_ptr<hscc::HsccEngine> hscc_;
    std::unique_ptr<telemetry::Sampler> sampler_;

    bool isCrashed = false;
    mem::CrashOutcome crashOutcome;
    persist::RecoveryReport lastRecovery_;

    // Reboot-survivable counters: the group is created once with the
    // system (never re-registered on reboot) and accumulates across
    // crash/reboot cycles.
    statistics::StatGroup recoveryStats;
    statistics::Scalar &reboots;
    statistics::Scalar &recoveredProcs;
    statistics::Scalar &quarantinedProcs;
    statistics::Scalar &framesReclaimed;
    statistics::Scalar &tornPtRolledBack;
    statistics::Scalar &recoveryErrors;
    statistics::Histogram &recoveryDuration;

    // SMP aggregate rollup: a counters-only mirror of one core's stat
    // tree, re-accumulated over every core each time stats are
    // visited.  Only built when numCores > 1, so the uniprocessor
    // stat dump stays byte-identical to the pre-SMP layout.
    mutable std::unique_ptr<statistics::StatGroup> coreAggregate_;
    mutable std::vector<std::unique_ptr<statistics::StatGroup>>
        aggregateChildren_;
    mutable std::vector<statistics::Scalar *> aggregateSlots_;
};

} // namespace kindle

#endif // KINDLE_KINDLE_KINDLE_HH
