/**
 * @file
 * The Kindle public API: one object assembling the full system.
 *
 * KindleSystem wires together the simulation kernel, the hybrid
 * DRAM+NVM memory, the cache hierarchy, the in-order core, the gemOS
 * kernel, and — when configured — the process-persistence domain and
 * the SSP/HSCC prototype engines.  It also owns the crash/reboot
 * protocol: crash() drops every volatile structure while the NVM
 * durable image survives, and reboot() boots a fresh OS that runs the
 * recovery procedure over that image.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   kindle::KindleConfig cfg;
 *   cfg.persistence = kindle::persist::PersistParams{};
 *   kindle::KindleSystem sys(cfg);
 *   sys.kernel().spawn(std::move(program), "init");
 *   sys.runAll();
 */

#ifndef KINDLE_KINDLE_KINDLE_HH
#define KINDLE_KINDLE_KINDLE_HH

#include <memory>
#include <optional>
#include <ostream>

#include "base/stats.hh"
#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "hscc/hscc_engine.hh"
#include "mem/hybrid_memory.hh"
#include "os/kernel.hh"
#include "persist/checkpoint.hh"
#include "persist/recovery.hh"
#include "sim/simulation.hh"
#include "ssp/ssp_engine.hh"

namespace kindle
{

/** Whole-system configuration. */
struct KindleConfig
{
    mem::HybridMemoryParams memory{};
    cache::HierarchyParams caches{};
    cpu::CoreParams core{};
    os::KernelParams kernel{};

    /** Enable process persistence with these parameters. */
    std::optional<persist::PersistParams> persistence;

    /** Enable the SSP prototype. */
    std::optional<ssp::SspParams> ssp;

    /** Enable the HSCC prototype. */
    std::optional<hscc::HsccParams> hscc;
};

/** The assembled machine. */
class KindleSystem
{
  public:
    explicit KindleSystem(const KindleConfig &config);
    ~KindleSystem();

    KindleSystem(const KindleSystem &) = delete;
    KindleSystem &operator=(const KindleSystem &) = delete;

    /** @name Component access. */
    /// @{
    sim::Simulation &simulation() { return sim; }
    mem::HybridMemory &memory() { return *mem_; }
    cache::Hierarchy &caches() { return *caches_; }
    cpu::Core &core() { return *core_; }
    os::Kernel &kernel() { return *kernel_; }

    /** Null when the feature is not configured. */
    persist::PersistDomain *persistence() { return persist_.get(); }
    ssp::SspEngine *sspEngine() { return ssp_.get(); }
    hscc::HsccEngine *hsccEngine() { return hscc_.get(); }
    /// @}

    /** Current simulated time. */
    Tick now() const { return sim.now(); }

    /** Spawn a program and run the machine until everything exits. */
    Tick run(std::unique_ptr<cpu::OpStream> program,
             const std::string &name);

    /** Run until all processes exit. */
    void runAll() { kernel_->run(); }

    /**
     * Power failure at the current instant: caches, TLBs, DRAM, MSRs,
     * the OS and pending events all vanish; only durable NVM content
     * survives.  The system is unusable until reboot().
     */
    void crash();

    /**
     * Boot a fresh OS over the surviving NVM image and, if
     * persistence is configured, run the recovery procedure and
     * restart the persistence domain.
     */
    persist::RecoveryReport reboot();

    /** True between crash() and reboot(). */
    bool crashed() const { return isCrashed; }

    /**
     * Drive @p visitor over every component's stat tree (memory,
     * caches, core, kernel, persistence/SSP/HSCC when configured) in
     * the fixed dump order.  Serializers, snapshots and ad-hoc stat
     * queries all build on this.
     */
    void acceptStats(statistics::StatVisitor &visitor) const;

    /** Dump the complete statistics tree as text. */
    void dumpStats(std::ostream &os) const;

    /** Dump the complete statistics tree as one JSON object. */
    void dumpStatsJson(std::ostream &os) const;

    /** Capture every stat as a flat path→value snapshot. */
    statistics::StatSnapshot snapshotStats() const;

  private:
    void buildOsLayer();

    KindleConfig config;

    sim::Simulation sim;
    std::unique_ptr<mem::HybridMemory> mem_;
    std::unique_ptr<cache::Hierarchy> caches_;
    std::unique_ptr<cpu::Core> core_;
    std::unique_ptr<os::Kernel> kernel_;
    std::unique_ptr<persist::PersistDomain> persist_;
    std::unique_ptr<ssp::SspEngine> ssp_;
    std::unique_ptr<hscc::HsccEngine> hscc_;

    bool isCrashed = false;
};

} // namespace kindle

#endif // KINDLE_KINDLE_KINDLE_HH
