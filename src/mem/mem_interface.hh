/**
 * @file
 * Device-level timing models for DRAM (DDR4-2400) and NVM (PCM).
 *
 * A MemInterface models banks with open-row buffers and a shared data
 * bus.  Latency for one line-sized access is:
 *
 *   start   = max(now, bank busy, bus busy)
 *   device  = row-hit or row-miss service time (read/write specific)
 *   latency = start + device - now
 *
 * Bulk transfers (page copies, log appends) use a per-line streaming
 * cost so multi-kilobyte operations remain cheap to simulate while
 * occupying the device realistically.
 */

#ifndef KINDLE_MEM_MEM_INTERFACE_HH
#define KINDLE_MEM_MEM_INTERFACE_HH

#include <vector>

#include "base/addr_range.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "mem/packet.hh"

namespace kindle::mem
{

/** Timing/geometry parameters for one memory technology. */
struct MemTimingParams
{
    const char *name;
    MemType type;

    unsigned banks;          ///< independent banks
    std::uint64_t rowBytes;  ///< row-buffer size per bank

    Tick readRowHit;   ///< read service, row open
    Tick readRowMiss;  ///< read service, row closed/conflict
    Tick writeRowHit;  ///< write service, row open
    Tick writeRowMiss; ///< write service, row closed/conflict

    Tick burst;        ///< data-bus occupancy per 64 B line

    Tick bulkReadPerLine;   ///< streaming read cost per line
    Tick bulkWritePerLine;  ///< streaming write cost per line
};

/** DDR4-2400 16x4-like parameters (paper Table I). */
MemTimingParams ddr4_2400Params();

/**
 * PCM parameters in the spirit of Song et al. [39]: reads several times
 * slower than DRAM, writes slower still and strongly asymmetric.
 */
MemTimingParams pcmParams();

/**
 * STT-MRAM-like parameters: reads close to DRAM, writes ~2x slower
 * than reads — the "fast NVM" point for §V-D technology studies.
 */
MemTimingParams sttMramParams();

/**
 * ReRAM-like parameters: between PCM and STT-MRAM on reads, strongly
 * asymmetric writes.
 */
MemTimingParams rramParams();

/** One memory device (all banks of one technology). */
class MemInterface
{
  public:
    MemInterface(const MemTimingParams &params, AddrRange range);

    const MemTimingParams &params() const { return _params; }
    const AddrRange &range() const { return _range; }

    /**
     * Service one line-sized access beginning no earlier than @p now.
     * @return the absolute tick at which the access completes.
     */
    Tick access(MemCmd cmd, Addr addr, Tick now);

    /**
     * Service a streaming transfer of @p bytes.
     * @return the absolute completion tick.
     */
    Tick bulkAccess(MemCmd cmd, Addr addr, std::uint64_t bytes,
                    Tick now);

    /** Statistics group for this device. */
    statistics::StatGroup &stats() { return statGroup; }
    const statistics::StatGroup &stats() const { return statGroup; }

    /** Forget open rows and busy state (used at reboot). */
    void reset();

  private:
    unsigned bankOf(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;

    MemTimingParams _params;
    AddrRange _range;

    struct Bank
    {
        std::uint64_t openRow = ~std::uint64_t(0);
        Tick busyUntil = 0;
    };

    std::vector<Bank> bankState;
    Tick busBusyUntil = 0;

    statistics::StatGroup statGroup;
    statistics::Scalar &readReqs;
    statistics::Scalar &writeReqs;
    statistics::Scalar &rowHits;
    statistics::Scalar &rowMisses;
    statistics::Scalar &bytesTransferred;
    statistics::Scalar &totalServiceTicks;
};

} // namespace kindle::mem

#endif // KINDLE_MEM_MEM_INTERFACE_HH
