#include "mem/bios_e820.hh"

#include "base/logging.hh"

namespace kindle::mem
{

void
E820Map::add(AddrRange range, E820Type type)
{
    if (!_entries.empty()) {
        const auto &prev = _entries.back().range;
        kindle_assert(range.start() >= prev.end(),
                      "e820 entries must be sorted and disjoint");
    }
    _entries.push_back({range, type});
}

std::uint64_t
E820Map::totalBytes(E820Type type) const
{
    std::uint64_t total = 0;
    for (const auto &e : _entries)
        if (e.type == type)
            total += e.range.size();
    return total;
}

AddrRange
E820Map::regionOf(E820Type type) const
{
    for (const auto &e : _entries)
        if (e.type == type)
            return e.range;
    kindle_fatal("e820 map has no region of type {}",
                 static_cast<unsigned>(type));
}

MemType
E820Map::typeOf(Addr addr) const
{
    for (const auto &e : _entries) {
        if (e.range.contains(addr)) {
            return e.type == E820Type::pmem ? MemType::nvm
                                            : MemType::dram;
        }
    }
    kindle_fatal("physical address {} not covered by the e820 map", addr);
}

E820Map
E820Map::standard(std::uint64_t dram_bytes, std::uint64_t nvm_bytes)
{
    kindle_assert(dram_bytes >= oneMiB, "need at least 1 MiB of DRAM");
    E820Map map;
    // Low memory with the traditional EBDA hole reserved.
    constexpr Addr lowTop = 640 * oneKiB;
    map.add(AddrRange(0, lowTop), E820Type::usable);
    map.add(AddrRange(lowTop, oneMiB), E820Type::reserved);
    map.add(AddrRange(oneMiB, dram_bytes), E820Type::usable);
    if (nvm_bytes > 0) {
        map.add(AddrRange::withSize(dram_bytes, nvm_bytes),
                E820Type::pmem);
    }
    return map;
}

} // namespace kindle::mem
