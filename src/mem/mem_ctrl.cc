#include "mem/mem_ctrl.hh"

#include <algorithm>

#include "base/logging.hh"
#include "telemetry/profiler.hh"

namespace kindle::mem
{

MemCtrl::MemCtrl(const MemCtrlParams &params,
                 const MemTimingParams &timing, AddrRange range)
    : _params(params),
      _range(range),
      iface(std::make_unique<MemInterface>(timing, range)),
      statGroup(std::string(timing.name) + "Ctrl",
                "memory controller with read/write buffers"),
      readStallTicks(statGroup.addScalar(
          "readStallTicks", "stall waiting for a read-buffer slot")),
      writeStallTicks(statGroup.addScalar(
          "writeStallTicks", "stall waiting for a write-buffer slot")),
      bulkOps(statGroup.addScalar("bulkOps", "bulk transfers serviced")),
      readLatency(statGroup.addHistogram(
          "readLatency", "read service latency (ticks)")),
      writeLatency(statGroup.addHistogram(
          "writeLatency", "posted-write accept latency (ticks)")),
      writeBufOccupancy(statGroup.addHistogram(
          "writeBufOccupancy", "write-buffer entries at accept"))
{
    kindle_assert(params.readBufferSize > 0, "read buffer cannot be 0");
    kindle_assert(params.writeBufferSize > 0, "write buffer cannot be 0");
    if (params.trackStalls) {
        writeStalls = &statGroup.addScalar(
            "writeStalls", "write submissions that found the buffer full");
        writeStallLatency = &statGroup.addHistogram(
            "writeStallLatency", "per-stall wait for a drain slot (ticks)");
    }
    statGroup.addChild(iface->stats());
}

Tick
MemCtrl::acquireSlot(std::priority_queue<Tick, std::vector<Tick>,
                                         std::greater<Tick>> &occupancy,
                     unsigned capacity, Tick now,
                     statistics::Scalar &stall_stat)
{
    // Retire entries that completed by now.
    while (!occupancy.empty() && occupancy.top() <= now)
        occupancy.pop();
    if (occupancy.size() < capacity)
        return now;
    // Buffer full: the requester stalls until the earliest entry
    // drains.
    const Tick freed = occupancy.top();
    occupancy.pop();
    stall_stat += static_cast<double>(freed - now);
    return freed;
}

Tick
MemCtrl::submit(const MemRequest &req, Tick now)
{
    kindle_assert(_range.contains(req.paddr),
                  "request routed to wrong controller");
    KINDLE_PROF_SCOPE(memCtrl);

    switch (req.cmd) {
      case MemCmd::read: {
        const Tick start = acquireSlot(readQueue, _params.readBufferSize,
                                       now, readStallTicks);
        const Tick done = iface->access(
            MemCmd::read, req.paddr, start + _params.frontendLatency);
        readQueue.push(done);
        readLatency.sample(static_cast<double>(done - now));
        return done - now;
      }

      case MemCmd::write:
      case MemCmd::writeback: {
        const Tick start = acquireSlot(
            writeQueue, _params.writeBufferSize, now, writeStallTicks);
        if (start != now && writeStalls) {
            ++*writeStalls;
            writeStallLatency->sample(static_cast<double>(start - now));
        }
        const Tick accepted = start + _params.frontendLatency;
        // Drain happens in the background at device speed.
        const Tick drained = iface->access(req.cmd, req.paddr, accepted);
        writeQueue.push(drained);
        lastWriteDrain = std::max(lastWriteDrain, drained);
        lastAcceptedDrain = drained;
        writeLatency.sample(static_cast<double>(accepted - now));
        writeBufOccupancy.sample(
            static_cast<double>(writeQueue.size()));
        return accepted - now;
      }

      case MemCmd::bulkRead: {
        ++bulkOps;
        const Tick done = iface->bulkAccess(
            MemCmd::bulkRead, req.paddr, req.size,
            now + _params.frontendLatency);
        return done - now;
      }

      case MemCmd::bulkWrite: {
        ++bulkOps;
        const Tick done = iface->bulkAccess(
            MemCmd::bulkWrite, req.paddr, req.size,
            now + _params.frontendLatency);
        return done - now;
      }
    }
    kindle_panic("unhandled memory command");
}

void
MemCtrl::reset()
{
    while (!readQueue.empty())
        readQueue.pop();
    while (!writeQueue.empty())
        writeQueue.pop();
    lastWriteDrain = 0;
    lastAcceptedDrain = 0;
    iface->reset();
}

} // namespace kindle::mem
