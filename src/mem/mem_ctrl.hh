/**
 * @file
 * Memory controller with finite read/write buffers.
 *
 * The paper's Table I configures the NVM controller with a 64-entry
 * read buffer and a 48-entry write buffer; this controller models both
 * queues.  Writes are posted: they complete into the write buffer at
 * frontend latency and drain to the device in the background, so NVM
 * writes look cheap until the buffer saturates — at which point the
 * requester stalls for a device-speed drain slot.  That saturation
 * behaviour is what makes large checkpoint bursts expensive, which the
 * persistence experiments depend on.
 */

#ifndef KINDLE_MEM_MEM_CTRL_HH
#define KINDLE_MEM_MEM_CTRL_HH

#include <memory>
#include <queue>
#include <vector>

#include "base/stats.hh"
#include "mem/mem_interface.hh"

namespace kindle::mem
{

/** Controller-level configuration. */
struct MemCtrlParams
{
    unsigned readBufferSize = 64;
    unsigned writeBufferSize = 48;
    Tick frontendLatency = 10 * oneNs;
    /**
     * Publish per-stall backpressure stats (stall count + per-stall
     * latency histogram) for the write-buffer-full path.  Off by
     * default so the baseline stat layout is unchanged; pressure
     * experiments switch it on to see controller backpressure.
     */
    bool trackStalls = false;
};

/** One channel: queues in front of one MemInterface. */
class MemCtrl
{
  public:
    MemCtrl(const MemCtrlParams &params, const MemTimingParams &timing,
            AddrRange range);

    const AddrRange &range() const { return _range; }
    MemType memType() const { return iface->params().type; }

    /**
     * Submit a request at tick @p now.
     * @return the latency visible to the requester: full service time
     *         for reads; buffer-accept time for posted writes.
     */
    Tick submit(const MemRequest &req, Tick now);

    /** Device + controller stats. */
    statistics::StatGroup &stats() { return statGroup; }
    const MemInterface &device() const { return *iface; }
    MemInterface &device() { return *iface; }

    /**
     * Tick at which every posted write accepted so far has reached
     * the device (what a store fence must wait for).
     */
    Tick writesDrainedAt() const { return lastWriteDrain; }

    /**
     * Drain-completion tick of the most recently accepted posted
     * write.  The durability layer uses this to decide whether that
     * specific write survives a power cut before the buffer drains.
     */
    Tick lastAcceptedWriteDrain() const { return lastAcceptedDrain; }

    /** Forget queued state (reboot). */
    void reset();

  private:
    /** Stall until a slot frees in @p occupancy if at capacity. */
    Tick acquireSlot(std::priority_queue<Tick, std::vector<Tick>,
                                         std::greater<Tick>> &occupancy,
                     unsigned capacity, Tick now,
                     statistics::Scalar &stall_stat);

    MemCtrlParams _params;
    AddrRange _range;
    std::unique_ptr<MemInterface> iface;

    /** Completion ticks of in-flight reads / draining writes. */
    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>>
        readQueue;
    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>>
        writeQueue;
    Tick lastWriteDrain = 0;
    Tick lastAcceptedDrain = 0;

    statistics::StatGroup statGroup;
    statistics::Scalar &readStallTicks;
    statistics::Scalar &writeStallTicks;
    statistics::Scalar &bulkOps;

    /** Requester-visible latency distributions (log-bucketed ticks):
     *  full service time for reads, buffer-accept time for writes —
     *  the write histogram's tail is the saturation stall. */
    statistics::Histogram &readLatency;
    statistics::Histogram &writeLatency;
    /** Write-buffer entries in flight, sampled at each accept. */
    statistics::Histogram &writeBufOccupancy;

    /** Buffer-full backpressure; registered only when
     *  MemCtrlParams::trackStalls is set. */
    statistics::Scalar *writeStalls = nullptr;
    statistics::Histogram *writeStallLatency = nullptr;
};

} // namespace kindle::mem

#endif // KINDLE_MEM_MEM_CTRL_HH
