#include "mem/hybrid_memory.hh"

#include "base/logging.hh"
#include "fault/fault.hh"

namespace kindle::mem
{

HybridMemory::HybridMemory(const HybridMemoryParams &params)
    : _params(params),
      biosMap(E820Map::standard(params.dramBytes, params.nvmBytes)),
      _dramRange(0, params.dramBytes),
      _nvmRange(AddrRange::withSize(params.dramBytes, params.nvmBytes)),
      dramStore(_dramRange),
      nvmStore(_nvmRange),
      _dramCtrl(std::make_unique<MemCtrl>(
          params.dramCtrl, params.dramTiming, _dramRange)),
      _nvmCtrl(std::make_unique<MemCtrl>(params.nvmCtrl,
                                         params.nvmTiming, _nvmRange)),
      statGroup("hybridMem", "hybrid DRAM+NVM physical memory"),
      crashes(statGroup.addScalar("crashes", "simulated power failures")),
      crashLinesLost(statGroup.addScalar(
          "crashLinesLost",
          "NVM lines lost from the write buffer across crashes")),
      crashTornWords(statGroup.addScalar(
          "crashTornWords", "64-bit stores torn by power loss"))
{
    kindle_assert(params.dramBytes >= 16 * oneMiB,
                  "DRAM capacity too small to boot the simulated OS");
    statGroup.addChild(_dramCtrl->stats());
    statGroup.addChild(_nvmCtrl->stats());
    if (params.media.enabled()) {
        _media = std::make_unique<NvmMediaModel>(_nvmRange, params.media);
        nvmStore.attachMedia(_media.get());
        statGroup.addChild(_media->stats());
    }
}

MemCtrl &
HybridMemory::ctrlFor(Addr addr)
{
    if (_nvmRange.contains(addr))
        return *_nvmCtrl;
    kindle_assert(_dramRange.contains(addr),
                  "physical address {} outside installed memory", addr);
    return *_dramCtrl;
}

Tick
HybridMemory::submit(const MemRequest &req, Tick now)
{
    MemCtrl &ctrl = ctrlFor(req.paddr);
    const Tick latency = ctrl.submit(req, now);
    if (_nvmRange.contains(req.paddr)) {
        // A line-granular write command enters the controller's posted
        // write buffer; the line is on media once its drain completes.
        if (req.cmd == MemCmd::write || req.cmd == MemCmd::writeback) {
            nvmStore.commitLine(req.paddr, now,
                                ctrl.lastAcceptedWriteDrain());
            fault::onDurableNvmWrite(now);
        } else if (req.cmd == MemCmd::bulkWrite) {
            // Bulk transfers bypass the buffer (device-level DMA); the
            // matching writeDataDurable() call moves the bytes.
            fault::onDurableNvmWrite(now);
        }
    }
    return latency;
}

void
HybridMemory::readData(Addr addr, void *dst, std::uint64_t size) const
{
    if (_nvmRange.contains(addr)) {
        nvmStore.read(addr, dst, size);
    } else {
        dramStore.read(addr, dst, size);
    }
}

void
HybridMemory::writeData(Addr addr, const void *src, std::uint64_t size)
{
    if (_nvmRange.contains(addr)) {
        nvmStore.writeVolatile(addr, src, size);
    } else {
        dramStore.write(addr, src, size);
    }
}

void
HybridMemory::writeDataDurable(Addr addr, const void *src,
                               std::uint64_t size)
{
    kindle_assert(_nvmRange.contains(addr),
                  "durable write outside the NVM range");
    nvmStore.writeDurable(addr, src, size);
}

void
HybridMemory::readNvmDurable(Addr addr, void *dst,
                             std::uint64_t size) const
{
    kindle_assert(_nvmRange.contains(addr),
                  "durable read outside the NVM range");
    nvmStore.readDurable(addr, dst, size);
}

void
HybridMemory::commitNvmLine(Addr line_addr)
{
    if (_nvmRange.contains(line_addr))
        nvmStore.commitLineImmediate(line_addr);
}

CrashOutcome
HybridMemory::crash(Tick now, const PowerLossModel &loss)
{
    ++crashes;
    const CrashOutcome out = nvmStore.crash(now, loss);
    crashLinesLost += static_cast<double>(out.linesLost);
    crashTornWords += static_cast<double>(out.tornWords);
    dramStore.clear();
    _dramCtrl->reset();
    _nvmCtrl->reset();
    return out;
}

void
HybridMemory::crash()
{
    ++crashes;
    dramStore.clear();
    nvmStore.crash();
    _dramCtrl->reset();
    _nvmCtrl->reset();
}

} // namespace kindle::mem
