/**
 * @file
 * Sparse byte-addressable backing stores for simulated physical memory.
 *
 * Two flavours exist:
 *
 *  - BackingStore: a plain sparse frame map.  DRAM uses one directly;
 *    its contents vanish on crash.
 *  - DurableStore: an NVM store with a *pending-line overlay* and an
 *    *in-flight controller stage*.  Writes land in the overlay first
 *    (they are architecturally in volatile CPU caches); when the cache
 *    hierarchy writes a line back — or software issues clwb — the line
 *    moves to the controller's posted-write buffer, tagged with the
 *    tick at which the device drain completes; only then is it truly
 *    durable.  A crash discards the overlay *and* every buffered line
 *    whose drain had not completed by the crash tick, exactly like
 *    powering off a machine whose caches and write buffers held
 *    unflushed NVM lines.  A seeded torn-store mode persists only half
 *    of one in-flight 64-bit word, modelling a store torn mid-drain.
 *    This is what gives the persistence experiments (and their tests)
 *    real teeth.
 */

#ifndef KINDLE_MEM_BACKING_STORE_HH
#define KINDLE_MEM_BACKING_STORE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "base/addr_range.hh"
#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace kindle::mem
{

class NvmMediaModel;

/** A sparse, frame-granular byte store over an address range. */
class BackingStore
{
  public:
    explicit BackingStore(AddrRange range) : _range(range) {}

    const AddrRange &range() const { return _range; }

    /** Read @p size bytes at @p addr into @p dst (zero-fill holes). */
    void read(Addr addr, void *dst, std::uint64_t size) const;

    /** Write @p size bytes from @p src at @p addr. */
    void write(Addr addr, const void *src, std::uint64_t size);

    /** Typed convenience read. */
    template <typename T>
    T
    readT(Addr addr) const
    {
        T v{};
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Typed convenience write. */
    template <typename T>
    void
    writeT(Addr addr, const T &v)
    {
        write(addr, &v, sizeof(T));
    }

    /** Drop every frame (volatile contents lost). */
    void clear() { frames.clear(); }

    /** Number of frames currently materialized. */
    std::size_t framesAllocated() const { return frames.size(); }

  private:
    using Frame = std::array<std::uint8_t, pageSize>;

    Frame *frameFor(Addr addr, bool allocate);
    const Frame *frameFor(Addr addr) const;

    AddrRange _range;
    std::unordered_map<std::uint64_t, std::unique_ptr<Frame>> frames;
};

/** What a power failure does to writes still in the controller. */
struct PowerLossModel
{
    /** Tear one lost 64-bit store (persist only its lower half). */
    bool tornStore = false;
    /** Seed for the deterministic torn-victim choice. */
    std::uint64_t seed = 1;
};

/** Accounting of a power-loss event over the controller buffer. */
struct CrashOutcome
{
    /** Buffered lines whose device drain beat the crash (survive). */
    std::uint64_t linesDrained = 0;
    /** Buffered lines still draining at the crash (lost). */
    std::uint64_t linesLost = 0;
    /** 64-bit stores persisted half-way (torn mode). */
    std::uint64_t tornWords = 0;
};

/**
 * NVM backing store with cache-residency-aware durability.
 *
 * writeVolatile() models a CPU store that is still sitting in some
 * cache; commitLine(addr, now, drain_at) models the line entering the
 * controller's posted-write buffer with a known drain-completion tick;
 * commitLineImmediate() models a device-confirmed flush (a clwb of a
 * line that was already clean everywhere).  writeDurable() bypasses
 * the overlay for transfers that are architecturally uncached (e.g. a
 * flushed page copy performed by the OS).
 */
class DurableStore
{
  public:
    explicit DurableStore(AddrRange range)
        : durable(range), _range(range)
    {}

    const AddrRange &range() const { return _range; }

    /**
     * Attach a media reliability model.  Every byte that reaches
     * durable media is charged as a line write (wear + drift), and
     * every byte read back from media passes through ECC decode.
     * Overlay and controller-buffer accesses are untouched — those
     * bytes live in SRAM/DRAM, not in NVM cells.
     */
    void attachMedia(NvmMediaModel *m) { media = m; }

    /** Store into the volatile overlay (cacheline-tracked). */
    void writeVolatile(Addr addr, const void *src, std::uint64_t size);

    /** Store straight to durable media. */
    void writeDurable(Addr addr, const void *src, std::uint64_t size);

    /** Read the latest value (overlay wins over durable). */
    void read(Addr addr, void *dst, std::uint64_t size) const;

    /** Read only what would survive a crash right now. */
    void readDurable(Addr addr, void *dst, std::uint64_t size) const;

    /**
     * A writeback/clwb of this line was accepted by the controller at
     * @p now; the device drain completes at @p drain_at.  The line
     * leaves the volatile overlay but only survives a crash whose tick
     * is >= @p drain_at (or an intervening drainTo / fence).
     */
    void commitLine(Addr line_addr, Tick now, Tick drain_at);

    /** Make one cache line durable immediately (device confirmed). */
    void commitLineImmediate(Addr line_addr);

    /** Retire every buffered line whose drain completed by @p now. */
    void drainTo(Tick now);

    /** Make every pending/buffered line durable (ordered full flush). */
    void commitAll();

    /**
     * Power loss at @p now: overlay lines are gone; buffered lines
     * drained by @p now survive, the rest are lost — except that torn
     * mode half-persists one lost 64-bit store (seeded, deterministic).
     */
    CrashOutcome crash(Tick now, const PowerLossModel &model);

    /**
     * Legacy wholesale crash: the controller buffer is treated as
     * drained (pre-buffer-model behaviour); only overlay lines die.
     */
    void
    crash()
    {
        drainTo(~Tick{0});
        pending.clear();
    }

    /** Typed helpers. */
    template <typename T>
    T
    readT(Addr addr) const
    {
        T v{};
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeVolatileT(Addr addr, const T &v)
    {
        writeVolatile(addr, &v, sizeof(T));
    }

    template <typename T>
    void
    writeDurableT(Addr addr, const T &v)
    {
        writeDurable(addr, &v, sizeof(T));
    }

    /** Lines currently volatile (not yet crash-safe). */
    std::size_t pendingLines() const { return pending.size(); }

    /** Lines sitting in the controller's posted-write buffer. */
    std::size_t inflightLines() const { return inflight.size(); }

  private:
    using Line = std::array<std::uint8_t, lineSize>;

    /** A buffered line draining toward the device. */
    struct Inflight
    {
        Line data{};
        Tick drainAt = 0;
    };

    BackingStore durable;
    AddrRange _range;
    NvmMediaModel *media = nullptr;
    std::unordered_map<Addr, Line> pending;
    std::unordered_map<Addr, Inflight> inflight;
};

} // namespace kindle::mem

#endif // KINDLE_MEM_BACKING_STORE_HH
