/**
 * @file
 * Sparse byte-addressable backing stores for simulated physical memory.
 *
 * Two flavours exist:
 *
 *  - BackingStore: a plain sparse frame map.  DRAM uses one directly;
 *    its contents vanish on crash.
 *  - DurableStore: an NVM store with a *pending-line overlay*.  Writes
 *    land in the overlay first (they are architecturally in volatile
 *    CPU caches); only when the cache hierarchy writes a line back — or
 *    software issues clwb — does the line become durable.  A crash
 *    discards the overlay, exactly like powering off a machine whose
 *    caches held unflushed NVM lines.  This is what gives the
 *    persistence experiments (and their tests) real teeth.
 */

#ifndef KINDLE_MEM_BACKING_STORE_HH
#define KINDLE_MEM_BACKING_STORE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "base/addr_range.hh"
#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace kindle::mem
{

/** A sparse, frame-granular byte store over an address range. */
class BackingStore
{
  public:
    explicit BackingStore(AddrRange range) : _range(range) {}

    const AddrRange &range() const { return _range; }

    /** Read @p size bytes at @p addr into @p dst (zero-fill holes). */
    void read(Addr addr, void *dst, std::uint64_t size) const;

    /** Write @p size bytes from @p src at @p addr. */
    void write(Addr addr, const void *src, std::uint64_t size);

    /** Typed convenience read. */
    template <typename T>
    T
    readT(Addr addr) const
    {
        T v{};
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Typed convenience write. */
    template <typename T>
    void
    writeT(Addr addr, const T &v)
    {
        write(addr, &v, sizeof(T));
    }

    /** Drop every frame (volatile contents lost). */
    void clear() { frames.clear(); }

    /** Number of frames currently materialized. */
    std::size_t framesAllocated() const { return frames.size(); }

  private:
    using Frame = std::array<std::uint8_t, pageSize>;

    Frame *frameFor(Addr addr, bool allocate);
    const Frame *frameFor(Addr addr) const;

    AddrRange _range;
    std::unordered_map<std::uint64_t, std::unique_ptr<Frame>> frames;
};

/**
 * NVM backing store with cache-residency-aware durability.
 *
 * writeVolatile() models a CPU store that is still sitting in some
 * cache; commitLine() models the line reaching the NVM device (via
 * writeback or clwb).  writeDurable() bypasses the overlay for
 * transfers that are architecturally uncached (e.g. a flushed page
 * copy performed by the OS).
 */
class DurableStore
{
  public:
    explicit DurableStore(AddrRange range)
        : durable(range), _range(range)
    {}

    const AddrRange &range() const { return _range; }

    /** Store into the volatile overlay (cacheline-tracked). */
    void writeVolatile(Addr addr, const void *src, std::uint64_t size);

    /** Store straight to durable media. */
    void
    writeDurable(Addr addr, const void *src, std::uint64_t size)
    {
        durable.write(addr, src, size);
    }

    /** Read the latest value (overlay wins over durable). */
    void read(Addr addr, void *dst, std::uint64_t size) const;

    /** Read only what would survive a crash right now. */
    void
    readDurable(Addr addr, void *dst, std::uint64_t size) const
    {
        durable.read(addr, dst, size);
    }

    /** Make one cache line durable (writeback / clwb reached device). */
    void commitLine(Addr line_addr);

    /** Make every pending line durable (e.g. ordered full flush). */
    void commitAll();

    /** Power loss: pending overlay lines are gone. */
    void crash() { pending.clear(); }

    /** Typed helpers. */
    template <typename T>
    T
    readT(Addr addr) const
    {
        T v{};
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeVolatileT(Addr addr, const T &v)
    {
        writeVolatile(addr, &v, sizeof(T));
    }

    template <typename T>
    void
    writeDurableT(Addr addr, const T &v)
    {
        writeDurable(addr, &v, sizeof(T));
    }

    /** Lines currently volatile (not yet crash-safe). */
    std::size_t pendingLines() const { return pending.size(); }

  private:
    using Line = std::array<std::uint8_t, lineSize>;

    BackingStore durable;
    AddrRange _range;
    std::unordered_map<Addr, Line> pending;
};

} // namespace kindle::mem

#endif // KINDLE_MEM_BACKING_STORE_HH
