/**
 * @file
 * BIOS memory map (e820 analogue).
 *
 * Kindle partitions the flat physical address space between DRAM and
 * NVM and publishes the partition to the OS through an e820-style map,
 * mirroring how the paper's gem5 BIOS advertises both technologies to
 * gemOS.
 */

#ifndef KINDLE_MEM_BIOS_E820_HH
#define KINDLE_MEM_BIOS_E820_HH

#include <vector>

#include "base/addr_range.hh"
#include "mem/packet.hh"

namespace kindle::mem
{

/** e820 entry types (subset; numbering follows the ACPI convention). */
enum class E820Type : std::uint32_t
{
    usable = 1,    ///< conventional (DRAM) memory
    reserved = 2,  ///< firmware reserved
    pmem = 7,      ///< persistent memory (NVM)
};

/** One advertised region. */
struct E820Entry
{
    AddrRange range;
    E820Type type;
};

/** The machine memory map handed from "BIOS" to the OS at boot. */
class E820Map
{
  public:
    /** Append an entry; entries must be sorted and non-overlapping. */
    void add(AddrRange range, E820Type type);

    const std::vector<E820Entry> &entries() const { return _entries; }

    /** Total bytes of a given type. */
    std::uint64_t totalBytes(E820Type type) const;

    /** First region of a given type; fatal if absent. */
    AddrRange regionOf(E820Type type) const;

    /** Which technology backs @p addr; fatal for unmapped addresses. */
    MemType typeOf(Addr addr) const;

    /**
     * Build the standard Kindle map: DRAM at physical zero, NVM
     * immediately above it, with a small reserved BIOS hole at the top
     * of the low 640 KiB for flavour-faithfulness.
     */
    static E820Map standard(std::uint64_t dram_bytes,
                            std::uint64_t nvm_bytes);

  private:
    std::vector<E820Entry> _entries;
};

} // namespace kindle::mem

#endif // KINDLE_MEM_BIOS_E820_HH
