/**
 * @file
 * The hybrid DRAM+NVM physical memory system.
 *
 * Kindle arranges DRAM and NVM in one flat physical address space
 * (DRAM at zero, NVM directly above it), publishes the layout via an
 * e820 map, and routes every memory request to the controller of the
 * backing technology.  Functional data lives in a volatile DRAM store
 * and a durability-tracking NVM store; timing flows through the two
 * controllers.
 */

#ifndef KINDLE_MEM_HYBRID_MEMORY_HH
#define KINDLE_MEM_HYBRID_MEMORY_HH

#include <memory>

#include "base/stats.hh"
#include "fault/fault.hh"
#include "mem/backing_store.hh"
#include "mem/bios_e820.hh"
#include "mem/mem_ctrl.hh"
#include "mem/nvm_media.hh"

namespace kindle::mem
{

/** Capacity and controller configuration for the hybrid system. */
struct HybridMemoryParams
{
    std::uint64_t dramBytes = 3 * oneGiB;  ///< paper Table I
    std::uint64_t nvmBytes = 2 * oneGiB;   ///< paper Table I
    MemCtrlParams dramCtrl{64, 64, 10 * oneNs};
    MemCtrlParams nvmCtrl{64, 48, 10 * oneNs};  ///< Table I buffers
    /** Device timings; swap the NVM entry to study other
     *  technologies (§V-D of the paper). */
    MemTimingParams dramTiming = ddr4_2400Params();
    MemTimingParams nvmTiming = pcmParams();
    /** NVM media error/wear model (disabled when not enabled()). */
    fault::MediaFaultPlan media{};
};

/** The flat-address hybrid memory: router + stores + controllers. */
class HybridMemory
{
  public:
    explicit HybridMemory(const HybridMemoryParams &params);

    const E820Map &e820() const { return biosMap; }
    const AddrRange &dramRange() const { return _dramRange; }
    const AddrRange &nvmRange() const { return _nvmRange; }

    /** Which technology backs @p addr. */
    MemType
    typeOf(Addr addr) const
    {
        return _nvmRange.contains(addr) ? MemType::nvm : MemType::dram;
    }

    /**
     * Timing: submit a request; returns requester-visible latency.
     * NVM write/writeback commands also commit the line's volatile
     * overlay (data has architecturally reached the device).
     */
    Tick submit(const MemRequest &req, Tick now);

    /** @name Functional data access (no timing). */
    /// @{
    void readData(Addr addr, void *dst, std::uint64_t size) const;
    void writeData(Addr addr, const void *src, std::uint64_t size);
    /** NVM write that is immediately durable (flushed bulk copies). */
    void writeDataDurable(Addr addr, const void *src,
                          std::uint64_t size);
    /** Read only crash-surviving NVM content. */
    void readNvmDurable(Addr addr, void *dst, std::uint64_t size) const;

    template <typename T>
    T
    readT(Addr addr) const
    {
        T v{};
        readData(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeT(Addr addr, const T &v)
    {
        writeData(addr, &v, sizeof(T));
    }
    /// @}

    /** Mark one NVM line durable (device-confirmed clwb completion). */
    void commitNvmLine(Addr line_addr);

    /** NVM lines still volatile (would be lost on crash). */
    std::size_t nvmPendingLines() const { return nvmStore.pendingLines(); }

    /** NVM lines buffered in the controller, drain still pending. */
    std::size_t
    nvmInflightLines() const
    {
        return nvmStore.inflightLines();
    }

    /**
     * Retire every buffered NVM write whose device drain completed by
     * @p now.  Called after a store fence has waited out the drains.
     */
    void drainWrites(Tick now) { nvmStore.drainTo(now); }

    /**
     * Power failure at @p now: DRAM contents, un-flushed NVM lines and
     * still-draining controller-buffer writes vanish (the latter per
     * @p loss — optionally tearing one in-flight 64-bit store);
     * controller state resets.
     */
    CrashOutcome crash(Tick now, const PowerLossModel &loss);

    /** Legacy wholesale crash: write buffer treated as drained. */
    void crash();

    /** The media reliability model, or null when not configured. */
    NvmMediaModel *media() { return _media.get(); }
    const NvmMediaModel *media() const { return _media.get(); }

    MemCtrl &dramCtrl() { return *_dramCtrl; }
    MemCtrl &nvmCtrl() { return *_nvmCtrl; }
    const MemCtrl &dramCtrl() const { return *_dramCtrl; }
    const MemCtrl &nvmCtrl() const { return *_nvmCtrl; }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    MemCtrl &ctrlFor(Addr addr);

    HybridMemoryParams _params;
    E820Map biosMap;
    AddrRange _dramRange;
    AddrRange _nvmRange;

    BackingStore dramStore;
    DurableStore nvmStore;
    std::unique_ptr<NvmMediaModel> _media;

    std::unique_ptr<MemCtrl> _dramCtrl;
    std::unique_ptr<MemCtrl> _nvmCtrl;

    statistics::StatGroup statGroup;
    statistics::Scalar &crashes;
    statistics::Scalar &crashLinesLost;
    statistics::Scalar &crashTornWords;
};

} // namespace kindle::mem

#endif // KINDLE_MEM_HYBRID_MEMORY_HH
