/**
 * @file
 * Patrol scrubber implementation.
 */

#include "mem/scrubber.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/str.hh"
#include "mem/hybrid_memory.hh"
#include "telemetry/profiler.hh"
#include "trace/trace.hh"

namespace kindle::mem
{

PatrolScrubber::PatrolScrubber(sim::Simulation &sim, HybridMemory &memory,
                               ScrubParams params)
    : sim(sim),
      memory(memory),
      _params(params),
      event(*this),
      statGroup("scrubber", "NVM patrol scrubber"),
      patrolChunks(statGroup.addScalar("patrolChunks",
                                       "patrol chunks inspected")),
      patrolPasses(statGroup.addScalar(
          "patrolPasses", "full sweeps of the NVM range completed")),
      scrubCorrected(statGroup.addScalar(
          "scrubCorrected", "single-bit lines healed by scrub rewrite")),
      scrubUncorrectable(statGroup.addScalar(
          "scrubUncorrectable", "uncorrectable lines found on patrol")),
      retirementsRequested(statGroup.addScalar(
          "retirementsRequested", "bad frames reported for retirement"))
{
    kindle_assert(_params.interval > 0, "scrub interval must be non-zero");
    kindle_assert(_params.chunkBytes >= pageSize,
                  "scrub chunk smaller than a frame");
}

PatrolScrubber::~PatrolScrubber() = default;

void
PatrolScrubber::start()
{
    if (started)
        return;
    started = true;
    scheduleNext();
}

void
PatrolScrubber::stop()
{
    if (!started)
        return;
    started = false;
    sim.eventq().deschedule(&event);
}

void
PatrolScrubber::scheduleNext()
{
    if (!started)
        return;
    sim.eventq().schedule(&event, sim.now() + _params.interval);
}

void
PatrolScrubber::patrol()
{
    KINDLE_PROF_SCOPE(scrub);
    ++patrolChunks;
    NvmMediaModel *media = memory.media();
    if (!media)
        return;

    const AddrRange &nvm = memory.nvmRange();
    const std::uint64_t chunk = std::min(_params.chunkBytes, nvm.size());
    const Addr begin = nvm.start() + cursor;
    const Addr end = std::min<Addr>(begin + chunk, nvm.end());
    KINDLE_TRACE_SPAN_ARGS(scrub, scrub, "scrub.patrol",
                           "begin={} bytes={}", begin, end - begin);

    // Snapshot the faulty lines in this window first: rewriting during
    // the walk would mutate the map under the iterator.
    std::vector<std::pair<Addr, unsigned>> faulty;
    media->forEachFaultyLine(AddrRange(begin, end),
                             [&](Addr line, unsigned bits) {
                                 faulty.emplace_back(line, bits);
                             });

    for (const auto &[line, bits] : faulty) {
        if (bits == 1) {
            // Correctable: ECC recovers the data, the rewrite
            // re-programs the cells.  A stuck cell survives the
            // rewrite; one leftover bit is still within SECDED's
            // capability, two or more mean the frame must go.
            const unsigned leftover = media->scrubRewrite(line);
            if (leftover == 0) {
                ++scrubCorrected;
            } else if (leftover >= 2) {
                ++scrubUncorrectable;
                if (handler) {
                    ++retirementsRequested;
                    handler(roundDown(line, pageSize), "uncorrectable");
                }
            }
        } else {
            ++scrubUncorrectable;
            if (handler) {
                ++retirementsRequested;
                handler(roundDown(line, pageSize), "uncorrectable");
            }
        }
    }

    // Wear-out is reported as soon as the media notices, independent
    // of where the patrol cursor happens to be.
    for (const Addr frame : media->takeExhaustedFrames()) {
        if (handler) {
            ++retirementsRequested;
            handler(frame, "endurance");
        }
    }

    cursor += end - begin;
    if (nvm.start() + cursor >= nvm.end()) {
        cursor = 0;
        ++patrolPasses;
    }
}

} // namespace kindle::mem
