/**
 * @file
 * Memory command vocabulary shared by the CPU, caches and controllers.
 */

#ifndef KINDLE_MEM_PACKET_HH
#define KINDLE_MEM_PACKET_HH

#include "base/types.hh"

namespace kindle::mem
{

/** The two memory technologies in the hybrid system. */
enum class MemType
{
    dram,
    nvm,
};

/** Commands travelling down the memory hierarchy. */
enum class MemCmd
{
    read,       ///< demand read of up to one cache line
    write,      ///< demand write of up to one cache line
    writeback,  ///< dirty line eviction from the LLC
    bulkRead,   ///< multi-line streaming read (page copies, log scans)
    bulkWrite,  ///< multi-line streaming write (page copies, log appends)
};

/** True for commands that deposit data into the device. */
constexpr bool
isWriteCmd(MemCmd cmd)
{
    return cmd == MemCmd::write || cmd == MemCmd::writeback ||
           cmd == MemCmd::bulkWrite;
}

/** A request as seen by a memory controller (always physical). */
struct MemRequest
{
    MemCmd cmd;
    Addr paddr;
    std::uint64_t size;
};

const char *memTypeName(MemType t);

} // namespace kindle::mem

#endif // KINDLE_MEM_PACKET_HH
