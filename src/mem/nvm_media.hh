/**
 * @file
 * NVM media reliability model: per-line error state, per-frame wear,
 * and SECDED ECC semantics.
 *
 * Real PCM does not return what was written: resistance drift flips
 * cells between refreshes, and limited write endurance leaves cells
 * stuck once a frame's write budget is exhausted.  This model keeps
 * the *pristine* data in the backing store and tracks fault metadata
 * beside it — the set of wrong bit positions per 64-byte line plus a
 * write counter per frame — so the ECC layer can decide, per read,
 * what the device actually delivers:
 *
 *   - 0 error bits: clean, pristine data returned;
 *   - 1 error bit:  SECDED corrects it — pristine data returned and a
 *     correction counted (demand or scrub, depending on who read);
 *   - 2+ error bits: uncorrectable — the returned bytes carry the
 *     real corruption (error bits XORed in), so checksum-validating
 *     consumers (recovery, the redo log) see genuine damage.
 *
 * Rewriting a line re-programs its cells: transient (drift) faults
 * clear, stuck-at faults persist.  That asymmetry is what makes the
 * patrol scrubber useful — and what forces the OS to retire frames
 * whose faults a rewrite cannot heal.
 *
 * Error state models the physical medium, so it deliberately survives
 * power loss; HybridMemory::crash() resets everything volatile but
 * leaves this model untouched.
 */

#ifndef KINDLE_MEM_NVM_MEDIA_HH
#define KINDLE_MEM_NVM_MEDIA_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/addr_range.hh"
#include "base/random.hh"
#include "base/stats.hh"
#include "fault/fault.hh"

namespace kindle::mem
{

/** ECC verdict for one line. */
enum class LineHealth
{
    clean,          ///< no error bits
    correctable,    ///< one error bit; SECDED corrects on read
    uncorrectable,  ///< two or more error bits; data is damage
};

/** The media model for one NVM device. */
class NvmMediaModel
{
  public:
    NvmMediaModel(AddrRange nvm_range, const fault::MediaFaultPlan &plan);

    const AddrRange &range() const { return _range; }

    /** @name Write side: a line's worth of data reached the media. */
    /// @{
    /** One 64B line was (re)programmed: wear + drift injection. */
    void onLineWrite(Addr line_addr);

    /** Arbitrary-span media write: onLineWrite per covered line. */
    void onRangeWrite(Addr addr, std::uint64_t size);
    /// @}

    /**
     * ECC decode on the read path.  @p dst already holds the pristine
     * bytes for [addr, addr+size); correctable lines are counted as
     * demand corrections and left pristine, uncorrectable lines get
     * their error bits XORed into the delivered bytes.
     */
    void filterRead(Addr addr, void *dst, std::uint64_t size);

    /** Error bits currently afflicting @p line_addr. */
    unsigned errorBits(Addr line_addr) const;

    LineHealth
    health(Addr line_addr) const
    {
        const unsigned n = errorBits(line_addr);
        return n == 0 ? LineHealth::clean
                      : (n == 1 ? LineHealth::correctable
                                : LineHealth::uncorrectable);
    }

    /**
     * Scrub rewrite of one line: re-program the cells (clears drift
     * faults, charges wear) and report the error bits that survive —
     * zero means the line healed, anything left is stuck.
     */
    unsigned scrubRewrite(Addr line_addr);

    /**
     * Plant @p bits error bits on a line (targeted injection / test
     * hook).  Sticky bits survive rewrites; transient bits do not.
     */
    void injectError(Addr line_addr, unsigned bits, bool sticky = true);

    /**
     * Visit every line that currently carries error bits inside
     * @p r, in ascending address order: fn(line_addr, error_bits).
     */
    template <typename Fn>
    void
    forEachFaultyLine(const AddrRange &r, Fn &&fn) const
    {
        for (auto it = faults.lower_bound(r.start());
             it != faults.end() && it->first < r.end(); ++it) {
            const unsigned n = static_cast<unsigned>(
                it->second.transient.size() + it->second.stuck.size());
            if (n > 0)
                fn(it->first, n);
        }
    }

    /**
     * Frames that crossed their endurance budget since the last call
     * (each frame reported exactly once, ascending order).  The
     * scrubber drains this and asks the OS to retire them before the
     * stuck-cell population grows past what ECC can hide.
     */
    std::vector<Addr> takeExhaustedFrames();

    /** Media writes charged against @p frame_addr so far. */
    std::uint64_t frameWrites(Addr frame_addr) const;

    statistics::StatGroup &stats() { return statGroup; }

  private:
    /** Error-bit positions (0..511) afflicting one line. */
    struct LineFaults
    {
        std::vector<std::uint16_t> transient;  ///< drift; rewrite heals
        std::vector<std::uint16_t> stuck;      ///< wear-out; permanent

        bool
        empty() const
        {
            return transient.empty() && stuck.empty();
        }
    };

    std::uint64_t frameIndex(Addr addr) const;
    void addBit(LineFaults &lf, std::uint16_t bit, bool sticky);

    AddrRange _range;
    fault::MediaFaultPlan plan;
    Random rng;

    /** Ordered so scrub walks and reports are deterministic. */
    std::map<Addr, LineFaults> faults;
    std::unordered_map<std::uint64_t, std::uint64_t> writes;
    std::unordered_set<std::uint64_t> exhausted;
    std::vector<Addr> newlyExhausted;

    statistics::StatGroup statGroup;
    statistics::Scalar &lineWrites;
    statistics::Scalar &transientFlips;
    statistics::Scalar &stuckBits;
    statistics::Scalar &demandCorrections;
    statistics::Scalar &uncorrectableReads;
    statistics::Scalar &framesExhausted;
};

} // namespace kindle::mem

#endif // KINDLE_MEM_NVM_MEDIA_HH
