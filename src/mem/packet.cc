#include "mem/packet.hh"

namespace kindle::mem
{

const char *
memTypeName(MemType t)
{
    return t == MemType::dram ? "DRAM" : "NVM";
}

} // namespace kindle::mem
