/**
 * @file
 * Patrol scrubber for the NVM media.
 *
 * ECC only helps while errors stay below its correction capability;
 * left alone, drift faults accumulate until two land on the same line
 * and the data is gone.  The patrol scrubber is the standard hardware
 * answer: an event-driven background walker that sweeps the NVM range
 * one chunk per interval, re-reading every line's ECC state.  Lines
 * with a single error bit are rewritten in place (the re-program heals
 * drift faults and the rewrite is charged device write time); lines
 * with uncorrectable damage — and frames past their write-endurance
 * budget — are reported upward through a callback so the OS can retire
 * the frame and migrate its page before the damage is consumed.
 *
 * The scrubber is a passive component between reboots: stop() is
 * called on crash (the machine is off), start() on (re)boot.  It keeps
 * no state that must survive power loss — the media model itself holds
 * the physical error state.
 */

#ifndef KINDLE_MEM_SCRUBBER_HH
#define KINDLE_MEM_SCRUBBER_HH

#include <functional>

#include "base/stats.hh"
#include "base/types.hh"
#include "sim/event.hh"
#include "sim/simulation.hh"

namespace kindle::mem
{

class HybridMemory;

/** Patrol cadence configuration. */
struct ScrubParams
{
    /** Gap between patrol chunks. */
    Tick interval = oneMs;
    /** NVM bytes inspected per patrol chunk. */
    std::uint64_t chunkBytes = 16 * oneMiB;
};

/**
 * The background patrol engine.  Construct once per machine; start()
 * and stop() follow boot/crash, and stats accumulate across reboots.
 */
class PatrolScrubber
{
  public:
    /** Called for frames needing retirement: (frame_addr, reason). */
    using BadFrameFn = std::function<void(Addr, const char *)>;

    PatrolScrubber(sim::Simulation &sim, HybridMemory &memory,
                   ScrubParams params);
    ~PatrolScrubber();

    /** Route uncorrectable/exhausted frames to the OS (may be null). */
    void setBadFrameHandler(BadFrameFn fn) { handler = std::move(fn); }

    void start();
    void stop();
    bool running() const { return started; }

    const ScrubParams &params() const { return _params; }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    class ScrubEvent : public sim::Event
    {
      public:
        explicit ScrubEvent(PatrolScrubber &scrubber)
            : Event("nvm-scrub", Priority::scrub), scrubber(scrubber)
        {}

        void
        process() override
        {
            scrubber.patrol();
            scrubber.scheduleNext();
        }

      private:
        PatrolScrubber &scrubber;
    };

    void patrol();
    void scheduleNext();

    sim::Simulation &sim;
    HybridMemory &memory;
    ScrubParams _params;
    BadFrameFn handler;

    ScrubEvent event;
    bool started = false;
    /** Next patrol position (offset into the NVM range). */
    std::uint64_t cursor = 0;

    statistics::StatGroup statGroup;
    statistics::Scalar &patrolChunks;
    statistics::Scalar &patrolPasses;
    statistics::Scalar &scrubCorrected;
    statistics::Scalar &scrubUncorrectable;
    statistics::Scalar &retirementsRequested;
};

} // namespace kindle::mem

#endif // KINDLE_MEM_SCRUBBER_HH
