#include "mem/backing_store.hh"

namespace kindle::mem
{

BackingStore::Frame *
BackingStore::frameFor(Addr addr, bool allocate)
{
    kindle_assert(_range.contains(addr),
                  "backing-store access at {} outside range", addr);
    const std::uint64_t fn = (addr - _range.start()) >> pageShift;
    auto it = frames.find(fn);
    if (it != frames.end())
        return it->second.get();
    if (!allocate)
        return nullptr;
    auto frame = std::make_unique<Frame>();
    frame->fill(0);
    Frame *raw = frame.get();
    frames.emplace(fn, std::move(frame));
    return raw;
}

const BackingStore::Frame *
BackingStore::frameFor(Addr addr) const
{
    kindle_assert(_range.contains(addr),
                  "backing-store access at {} outside range", addr);
    const std::uint64_t fn = (addr - _range.start()) >> pageShift;
    const auto it = frames.find(fn);
    return it == frames.end() ? nullptr : it->second.get();
}

void
BackingStore::read(Addr addr, void *dst, std::uint64_t size) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (size > 0) {
        const std::uint64_t in_page = addr & (pageSize - 1);
        const std::uint64_t chunk = std::min(size, pageSize - in_page);
        if (const Frame *f = frameFor(addr))
            std::memcpy(out, f->data() + in_page, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        size -= chunk;
    }
}

void
BackingStore::write(Addr addr, const void *src, std::uint64_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (size > 0) {
        const std::uint64_t in_page = addr & (pageSize - 1);
        const std::uint64_t chunk = std::min(size, pageSize - in_page);
        Frame *f = frameFor(addr, true);
        std::memcpy(f->data() + in_page, in, chunk);
        addr += chunk;
        in += chunk;
        size -= chunk;
    }
}

void
DurableStore::writeVolatile(Addr addr, const void *src, std::uint64_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (size > 0) {
        const Addr line_addr = roundDown(addr, lineSize);
        const std::uint64_t in_line = addr - line_addr;
        const std::uint64_t chunk = std::min(size, lineSize - in_line);
        auto it = pending.find(line_addr);
        if (it == pending.end()) {
            // First volatile touch of this line: seed the overlay with
            // the current durable contents so partial-line stores keep
            // neighbouring bytes.
            Line seed{};
            durable.read(line_addr, seed.data(), lineSize);
            it = pending.emplace(line_addr, seed).first;
        }
        std::memcpy(it->second.data() + in_line, in, chunk);
        addr += chunk;
        in += chunk;
        size -= chunk;
    }
}

void
DurableStore::read(Addr addr, void *dst, std::uint64_t size) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (size > 0) {
        const Addr line_addr = roundDown(addr, lineSize);
        const std::uint64_t in_line = addr - line_addr;
        const std::uint64_t chunk = std::min(size, lineSize - in_line);
        const auto it = pending.find(line_addr);
        if (it != pending.end())
            std::memcpy(out, it->second.data() + in_line, chunk);
        else
            durable.read(addr, out, chunk);
        addr += chunk;
        out += chunk;
        size -= chunk;
    }
}

void
DurableStore::commitLine(Addr line_addr)
{
    line_addr = roundDown(line_addr, lineSize);
    const auto it = pending.find(line_addr);
    if (it == pending.end())
        return;
    durable.write(line_addr, it->second.data(), lineSize);
    pending.erase(it);
}

void
DurableStore::commitAll()
{
    for (const auto &[line_addr, data] : pending)
        durable.write(line_addr, data.data(), lineSize);
    pending.clear();
}

} // namespace kindle::mem
