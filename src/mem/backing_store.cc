#include "mem/backing_store.hh"

#include <algorithm>
#include <vector>

#include "base/random.hh"
#include "mem/nvm_media.hh"

namespace kindle::mem
{

BackingStore::Frame *
BackingStore::frameFor(Addr addr, bool allocate)
{
    kindle_assert(_range.contains(addr),
                  "backing-store access at {} outside range", addr);
    const std::uint64_t fn = (addr - _range.start()) >> pageShift;
    auto it = frames.find(fn);
    if (it != frames.end())
        return it->second.get();
    if (!allocate)
        return nullptr;
    auto frame = std::make_unique<Frame>();
    frame->fill(0);
    Frame *raw = frame.get();
    frames.emplace(fn, std::move(frame));
    return raw;
}

const BackingStore::Frame *
BackingStore::frameFor(Addr addr) const
{
    kindle_assert(_range.contains(addr),
                  "backing-store access at {} outside range", addr);
    const std::uint64_t fn = (addr - _range.start()) >> pageShift;
    const auto it = frames.find(fn);
    return it == frames.end() ? nullptr : it->second.get();
}

void
BackingStore::read(Addr addr, void *dst, std::uint64_t size) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (size > 0) {
        const std::uint64_t in_page = addr & (pageSize - 1);
        const std::uint64_t chunk = std::min(size, pageSize - in_page);
        if (const Frame *f = frameFor(addr))
            std::memcpy(out, f->data() + in_page, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        size -= chunk;
    }
}

void
BackingStore::write(Addr addr, const void *src, std::uint64_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (size > 0) {
        const std::uint64_t in_page = addr & (pageSize - 1);
        const std::uint64_t chunk = std::min(size, pageSize - in_page);
        Frame *f = frameFor(addr, true);
        std::memcpy(f->data() + in_page, in, chunk);
        addr += chunk;
        in += chunk;
        size -= chunk;
    }
}

void
DurableStore::writeDurable(Addr addr, const void *src, std::uint64_t size)
{
    durable.write(addr, src, size);
    if (media)
        media->onRangeWrite(addr, size);
}

void
DurableStore::readDurable(Addr addr, void *dst, std::uint64_t size) const
{
    durable.read(addr, dst, size);
    if (media)
        media->filterRead(addr, dst, size);
}

void
DurableStore::writeVolatile(Addr addr, const void *src, std::uint64_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (size > 0) {
        const Addr line_addr = roundDown(addr, lineSize);
        const std::uint64_t in_line = addr - line_addr;
        const std::uint64_t chunk = std::min(size, lineSize - in_line);
        auto it = pending.find(line_addr);
        if (it == pending.end()) {
            // First volatile touch of this line: seed the overlay with
            // the current durable contents so partial-line stores keep
            // neighbouring bytes.  The seed is what a CPU load would
            // see, so it passes through ECC — an uncorrectable line
            // read-modify-written here propagates its damage.
            Line seed{};
            durable.read(line_addr, seed.data(), lineSize);
            if (media)
                media->filterRead(line_addr, seed.data(), lineSize);
            it = pending.emplace(line_addr, seed).first;
        }
        std::memcpy(it->second.data() + in_line, in, chunk);
        addr += chunk;
        in += chunk;
        size -= chunk;
    }
}

void
DurableStore::read(Addr addr, void *dst, std::uint64_t size) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (size > 0) {
        const Addr line_addr = roundDown(addr, lineSize);
        const std::uint64_t in_line = addr - line_addr;
        const std::uint64_t chunk = std::min(size, lineSize - in_line);
        const auto it = pending.find(line_addr);
        const auto fit = inflight.find(line_addr);
        if (it != pending.end()) {
            std::memcpy(out, it->second.data() + in_line, chunk);
        } else if (fit != inflight.end()) {
            std::memcpy(out, fit->second.data.data() + in_line, chunk);
        } else {
            durable.read(addr, out, chunk);
            if (media)
                media->filterRead(addr, out, chunk);
        }
        addr += chunk;
        out += chunk;
        size -= chunk;
    }
}

void
DurableStore::commitLine(Addr line_addr, Tick now, Tick drain_at)
{
    drainTo(now);
    line_addr = roundDown(line_addr, lineSize);
    const auto it = pending.find(line_addr);
    if (it == pending.end()) {
        // Nothing volatile for this line; a repeat writeback of an
        // already-buffered line just restarts its drain clock.
        const auto fit = inflight.find(line_addr);
        if (fit != inflight.end())
            fit->second.drainAt = std::max(fit->second.drainAt, drain_at);
        return;
    }
    inflight[line_addr] = Inflight{it->second, drain_at};
    pending.erase(it);
}

void
DurableStore::commitLineImmediate(Addr line_addr)
{
    line_addr = roundDown(line_addr, lineSize);
    if (const auto it = pending.find(line_addr); it != pending.end()) {
        durable.write(line_addr, it->second.data(), lineSize);
        if (media)
            media->onLineWrite(line_addr);
        pending.erase(it);
    }
    if (const auto it = inflight.find(line_addr); it != inflight.end()) {
        durable.write(line_addr, it->second.data.data(), lineSize);
        if (media)
            media->onLineWrite(line_addr);
        inflight.erase(it);
    }
}

void
DurableStore::drainTo(Tick now)
{
    for (auto it = inflight.begin(); it != inflight.end();) {
        if (it->second.drainAt <= now) {
            durable.write(it->first, it->second.data.data(), lineSize);
            if (media)
                media->onLineWrite(it->first);
            it = inflight.erase(it);
        } else {
            ++it;
        }
    }
}

void
DurableStore::commitAll()
{
    for (const auto &[line_addr, data] : pending) {
        durable.write(line_addr, data.data(), lineSize);
        if (media)
            media->onLineWrite(line_addr);
    }
    pending.clear();
    drainTo(~Tick{0});
}

CrashOutcome
DurableStore::crash(Tick now, const PowerLossModel &model)
{
    CrashOutcome out;

    // Writes the device finished draining before the power cut are on
    // media and survive; collect the rest (sorted for determinism).
    std::vector<Addr> lost;
    lost.reserve(inflight.size());
    for (const auto &[line_addr, entry] : inflight) {
        if (entry.drainAt <= now) {
            durable.write(line_addr, entry.data.data(), lineSize);
            if (media)
                media->onLineWrite(line_addr);
            ++out.linesDrained;
        } else {
            lost.push_back(line_addr);
        }
    }
    std::sort(lost.begin(), lost.end());
    out.linesLost = lost.size();

    if (model.tornStore && !lost.empty()) {
        // Pick one lost line (seeded) that actually changes a 64-bit
        // word relative to media, and persist only a prefix of one
        // such word — the media's write granularity is smaller than a
        // word, so a store torn mid-drain lands 1–7 of its new bytes
        // (4, the half-word tear, is one of the possibilities).
        Random rng(model.seed);
        const std::size_t start = rng.uniform(lost.size());
        for (std::size_t k = 0;
             k < lost.size() && out.tornWords == 0; ++k) {
            const Addr line_addr = lost[(start + k) % lost.size()];
            const Line &buffered = inflight.at(line_addr).data;
            Line settled{};
            durable.read(line_addr, settled.data(), lineSize);
            std::vector<std::uint64_t> candidates;
            for (std::uint64_t off = 0; off + 8 <= lineSize; off += 8) {
                if (std::memcmp(buffered.data() + off,
                                settled.data() + off, 8) != 0) {
                    candidates.push_back(off);
                }
            }
            if (candidates.empty())
                continue;
            const std::uint64_t off =
                candidates[rng.uniform(candidates.size())];
            const std::uint64_t bytes = 1 + rng.uniform(7);
            durable.write(line_addr + off, buffered.data() + off,
                          bytes);
            if (media)
                media->onLineWrite(line_addr);
            ++out.tornWords;
        }
    }

    inflight.clear();
    pending.clear();
    return out;
}

} // namespace kindle::mem
