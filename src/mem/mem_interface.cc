#include "mem/mem_interface.hh"

#include <algorithm>

#include "base/intmath.hh"
#include "base/logging.hh"

namespace kindle::mem
{

MemTimingParams
ddr4_2400Params()
{
    MemTimingParams p{};
    p.name = "DDR4-2400";
    p.type = MemType::dram;
    p.banks = 16;
    p.rowBytes = 8 * oneKiB;
    p.readRowHit = 15 * oneNs;   // ~tCAS + transfer
    p.readRowMiss = 45 * oneNs;  // tRP + tRCD + tCAS
    p.writeRowHit = 15 * oneNs;
    p.writeRowMiss = 45 * oneNs;
    p.burst = 3330;              // 64 B @ 19.2 GB/s ≈ 3.33 ns
    p.bulkReadPerLine = 4 * oneNs;
    p.bulkWritePerLine = 4 * oneNs;
    return p;
}

MemTimingParams
pcmParams()
{
    MemTimingParams p{};
    p.name = "PCM";
    p.type = MemType::nvm;
    p.banks = 8;
    p.rowBytes = 4 * oneKiB;
    p.readRowHit = 60 * oneNs;
    p.readRowMiss = 150 * oneNs;
    p.writeRowHit = 300 * oneNs;
    p.writeRowMiss = 450 * oneNs;
    p.burst = 13320;             // ~4x slower interface than DDR4
    p.bulkReadPerLine = 16 * oneNs;
    p.bulkWritePerLine = 60 * oneNs;
    return p;
}

MemTimingParams
sttMramParams()
{
    MemTimingParams p{};
    p.name = "STT-MRAM";
    p.type = MemType::nvm;
    p.banks = 16;
    p.rowBytes = 4 * oneKiB;
    p.readRowHit = 20 * oneNs;
    p.readRowMiss = 35 * oneNs;
    p.writeRowHit = 40 * oneNs;
    p.writeRowMiss = 60 * oneNs;
    p.burst = 4000;
    p.bulkReadPerLine = 5 * oneNs;
    p.bulkWritePerLine = 10 * oneNs;
    return p;
}

MemTimingParams
rramParams()
{
    MemTimingParams p{};
    p.name = "ReRAM";
    p.type = MemType::nvm;
    p.banks = 8;
    p.rowBytes = 4 * oneKiB;
    p.readRowHit = 40 * oneNs;
    p.readRowMiss = 100 * oneNs;
    p.writeRowHit = 150 * oneNs;
    p.writeRowMiss = 250 * oneNs;
    p.burst = 8000;
    p.bulkReadPerLine = 10 * oneNs;
    p.bulkWritePerLine = 30 * oneNs;
    return p;
}

MemInterface::MemInterface(const MemTimingParams &params, AddrRange range)
    : _params(params),
      _range(range),
      bankState(params.banks),
      statGroup(params.name, "memory device timing model"),
      readReqs(statGroup.addScalar("readReqs", "line reads serviced")),
      writeReqs(statGroup.addScalar("writeReqs", "line writes serviced")),
      rowHits(statGroup.addScalar("rowHits", "row-buffer hits")),
      rowMisses(statGroup.addScalar("rowMisses", "row-buffer misses")),
      bytesTransferred(
          statGroup.addScalar("bytes", "total bytes transferred")),
      totalServiceTicks(statGroup.addScalar(
          "serviceTicks", "sum of device service time"))
{
    kindle_assert(params.banks > 0, "memory device needs banks");
    kindle_assert(isPowerOf2(params.rowBytes), "row size must be pow2");
}

unsigned
MemInterface::bankOf(Addr addr) const
{
    // Row-interleaved bank mapping: consecutive rows hit different
    // banks, which is the common open-page address mapping.
    return (rowOf(addr)) % _params.banks;
}

std::uint64_t
MemInterface::rowOf(Addr addr) const
{
    return _range.offsetOf(addr) / _params.rowBytes;
}

Tick
MemInterface::access(MemCmd cmd, Addr addr, Tick now)
{
    kindle_assert(_range.contains(addr),
                  "device access outside address range");
    Bank &bank = bankState[bankOf(addr)];
    const std::uint64_t row = rowOf(addr);
    const bool hit = bank.openRow == row;

    const bool is_write = isWriteCmd(cmd);
    const Tick service =
        is_write ? (hit ? _params.writeRowHit : _params.writeRowMiss)
                 : (hit ? _params.readRowHit : _params.readRowMiss);

    const Tick start = std::max({now, bank.busyUntil, busBusyUntil});
    const Tick done = start + service;

    bank.openRow = row;
    bank.busyUntil = done;
    busBusyUntil = start + _params.burst;

    if (is_write)
        ++writeReqs;
    else
        ++readReqs;
    if (hit)
        ++rowHits;
    else
        ++rowMisses;
    bytesTransferred += static_cast<double>(lineSize);
    totalServiceTicks += static_cast<double>(done - now);

    return done;
}

Tick
MemInterface::bulkAccess(MemCmd cmd, Addr addr, std::uint64_t bytes,
                         Tick now)
{
    kindle_assert(_range.contains(addr),
                  "bulk access outside address range");
    const std::uint64_t lines = divCeil(std::max<std::uint64_t>(bytes, 1),
                                        lineSize);
    const bool is_write = isWriteCmd(cmd);
    const Tick per_line =
        is_write ? _params.bulkWritePerLine : _params.bulkReadPerLine;

    // A streaming transfer opens each row once; charge one row miss to
    // start plus bandwidth-limited line costs, and hold the touched
    // bank busy for the duration.
    Bank &bank = bankState[bankOf(addr)];
    const Tick start = std::max({now, bank.busyUntil, busBusyUntil});
    const Tick first =
        is_write ? _params.writeRowMiss : _params.readRowMiss;
    const Tick done = start + first + lines * per_line;

    bank.openRow = rowOf(addr);
    bank.busyUntil = done;
    busBusyUntil = done;

    if (is_write)
        ++writeReqs;
    else
        ++readReqs;
    ++rowMisses;
    bytesTransferred += static_cast<double>(lines * lineSize);
    totalServiceTicks += static_cast<double>(done - now);

    return done;
}

void
MemInterface::reset()
{
    for (auto &b : bankState) {
        b.openRow = ~std::uint64_t(0);
        b.busyUntil = 0;
    }
    busBusyUntil = 0;
}

} // namespace kindle::mem
