/**
 * @file
 * NVM media reliability model implementation.
 */

#include "mem/nvm_media.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"

namespace kindle::mem
{

NvmMediaModel::NvmMediaModel(AddrRange nvm_range,
                             const fault::MediaFaultPlan &media_plan)
    : _range(nvm_range),
      plan(media_plan),
      rng(plan.seed),
      statGroup("nvmMedia", "NVM media error and wear model"),
      lineWrites(statGroup.addScalar("lineWrites",
                                     "cache lines programmed on media")),
      transientFlips(statGroup.addScalar(
          "transientFlips", "drift bit flips injected by rate")),
      stuckBits(statGroup.addScalar(
          "stuckBits", "stuck-at bits developed from wear-out")),
      demandCorrections(statGroup.addScalar(
          "demandCorrections", "single-bit errors corrected on demand reads")),
      uncorrectableReads(statGroup.addScalar(
          "uncorrectableReads", "reads that returned uncorrectable damage")),
      framesExhausted(statGroup.addScalar(
          "framesExhausted", "frames past their write-endurance budget"))
{
    for (const fault::MediaFault &f : plan.faults) {
        const Addr line = _range.start() + f.frame * pageSize +
                          f.line * lineSize;
        kindle_assert(_range.contains(line),
                      "targeted media fault outside the NVM range "
                      "(frame {}, line {})", f.frame, f.line);
        injectError(line, f.bits, f.sticky);
    }
}

std::uint64_t
NvmMediaModel::frameIndex(Addr addr) const
{
    return _range.offsetOf(addr) / pageSize;
}

void
NvmMediaModel::addBit(LineFaults &lf, std::uint16_t bit, bool sticky)
{
    auto &vec = sticky ? lf.stuck : lf.transient;
    if (std::find(vec.begin(), vec.end(), bit) == vec.end())
        vec.push_back(bit);
}

void
NvmMediaModel::onLineWrite(Addr line_addr)
{
    if (!_range.contains(line_addr))
        return;
    const Addr line = line_addr & ~static_cast<Addr>(lineSize - 1);
    ++lineWrites;

    // Re-programming the cells heals drift; stuck cells stay stuck.
    auto it = faults.find(line);
    if (it != faults.end()) {
        it->second.transient.clear();
        if (it->second.empty())
            faults.erase(it);
    }

    if (plan.writeEndurance != 0) {
        const std::uint64_t frame = frameIndex(line);
        const std::uint64_t n = ++writes[frame];
        if (n > plan.writeEndurance) {
            // Past budget, every further write risks sticking a cell.
            // The position hash keeps victims deterministic without
            // burning shared rng stream state on the common path.
            const std::uint16_t bit = static_cast<std::uint16_t>(
                (line * 0x9e3779b97f4a7c15ull >> 32) % (lineSize * 8));
            auto &lf = faults[line];
            const auto before = lf.stuck.size();
            addBit(lf, bit, true);
            if (lf.stuck.size() > before)
                ++stuckBits;
            if (exhausted.insert(frame).second) {
                ++framesExhausted;
                newlyExhausted.push_back(_range.start() + frame * pageSize);
            }
        }
    }

    if (plan.bitFlipRate > 0.0 && rng.chance(plan.bitFlipRate)) {
        addBit(faults[line],
               static_cast<std::uint16_t>(rng.uniform(lineSize * 8)),
               false);
        ++transientFlips;
    }
}

void
NvmMediaModel::onRangeWrite(Addr addr, std::uint64_t size)
{
    if (size == 0)
        return;
    const Addr first = addr & ~static_cast<Addr>(lineSize - 1);
    for (Addr line = first; line < addr + size; line += lineSize)
        onLineWrite(line);
}

void
NvmMediaModel::filterRead(Addr addr, void *dst, std::uint64_t size)
{
    if (size == 0 || faults.empty())
        return;
    const Addr first = addr & ~static_cast<Addr>(lineSize - 1);
    auto *bytes = static_cast<std::uint8_t *>(dst);
    for (auto it = faults.lower_bound(first);
         it != faults.end() && it->first < addr + size; ++it) {
        const Addr line = it->first;
        const LineFaults &lf = it->second;
        const std::uint64_t n = lf.transient.size() + lf.stuck.size();
        if (n == 0)
            continue;
        if (n == 1) {
            // SECDED corrects it; the caller keeps pristine data.
            ++demandCorrections;
            continue;
        }
        // Uncorrectable: flip the error bits that land inside the
        // requested window so the delivered bytes carry real damage.
        ++uncorrectableReads;
        auto flip = [&](std::uint16_t bit) {
            const Addr byte_addr = line + bit / 8;
            if (byte_addr >= addr && byte_addr < addr + size)
                bytes[byte_addr - addr] ^= 1u << (bit % 8);
        };
        for (std::uint16_t b : lf.transient)
            flip(b);
        for (std::uint16_t b : lf.stuck)
            flip(b);
    }
}

unsigned
NvmMediaModel::errorBits(Addr line_addr) const
{
    const Addr line = line_addr & ~static_cast<Addr>(lineSize - 1);
    const auto it = faults.find(line);
    if (it == faults.end())
        return 0;
    return static_cast<unsigned>(it->second.transient.size() +
                                 it->second.stuck.size());
}

unsigned
NvmMediaModel::scrubRewrite(Addr line_addr)
{
    const Addr line = line_addr & ~static_cast<Addr>(lineSize - 1);
    onLineWrite(line);
    return errorBits(line);
}

void
NvmMediaModel::injectError(Addr line_addr, unsigned bits, bool sticky)
{
    const Addr line = line_addr & ~static_cast<Addr>(lineSize - 1);
    kindle_assert(_range.contains(line),
                  "injected media error outside the NVM range");
    LineFaults &lf = faults[line];
    // Spread the requested bits across distinct positions.
    for (unsigned i = 0; i < bits; ++i) {
        addBit(lf, static_cast<std::uint16_t>(
                       (i * 97 + (line >> 6) * 13) % (lineSize * 8)),
               sticky);
    }
}

std::vector<Addr>
NvmMediaModel::takeExhaustedFrames()
{
    std::vector<Addr> out;
    out.swap(newlyExhausted);
    std::sort(out.begin(), out.end());
    return out;
}

std::uint64_t
NvmMediaModel::frameWrites(Addr frame_addr) const
{
    const auto it = writes.find(frameIndex(frame_addr));
    return it == writes.end() ? 0 : it->second;
}

} // namespace kindle::mem
