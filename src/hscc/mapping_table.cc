#include "hscc/mapping_table.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace kindle::hscc
{

MappingTable::MappingTable(unsigned slots_arg, os::KernelMem &kmem_arg,
                           os::FrameAllocator &dram_alloc)
    : kmem(kmem_arg),
      slots(slots_arg),
      statGroup("hsccMapTable", "NVM-to-DRAM mapping lookup table"),
      lookups(statGroup.addScalar("lookups", "table lookups")),
      updates(statGroup.addScalar("updates", "table updates"))
{
    kindle_assert(slots > 0, "empty mapping table");
    // Contiguous frames for the table itself.
    const std::uint64_t bytes =
        roundUp(std::uint64_t(slots) * sizeof(MapEntry), pageSize);
    tableBase = dram_alloc.alloc();
    for (std::uint64_t i = pageSize; i < bytes; i += pageSize) {
        const Addr f = dram_alloc.alloc();
        kindle_assert(f == tableBase + i,
                      "mapping table frames not contiguous");
    }
}

Addr
MappingTable::slotAddr(unsigned index) const
{
    kindle_assert(index < slots, "mapping-table slot out of range");
    return tableBase + index * sizeof(MapEntry);
}

void
MappingTable::set(unsigned index, Addr nvm_frame, Addr dram_frame)
{
    ++updates;
    const MapEntry e{nvm_frame, dram_frame};
    kmem.writeBuf(slotAddr(index), &e, sizeof(e));
    byNvm[nvm_frame] = index;
    byDram[dram_frame] = index;
}

void
MappingTable::clear(unsigned index)
{
    ++updates;
    MapEntry e{};
    kmem.readBuf(slotAddr(index), &e, sizeof(e));
    byNvm.erase(e.nvmFrame);
    byDram.erase(e.dramFrame);
    const MapEntry zero{};
    kmem.writeBuf(slotAddr(index), &zero, sizeof(zero));
}

Addr
MappingTable::dramFor(Addr nvm_frame)
{
    ++lookups;
    const auto it = byNvm.find(nvm_frame);
    if (it == byNvm.end())
        return invalidAddr;
    MapEntry e{};
    kmem.readBuf(slotAddr(it->second), &e, sizeof(e));
    return e.dramFrame;
}

Addr
MappingTable::nvmFor(Addr dram_frame)
{
    ++lookups;
    const auto it = byDram.find(dram_frame);
    if (it == byDram.end())
        return invalidAddr;
    MapEntry e{};
    kmem.readBuf(slotAddr(it->second), &e, sizeof(e));
    return e.nvmFrame;
}

} // namespace kindle::hscc
