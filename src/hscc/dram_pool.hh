/**
 * @file
 * The HSCC DRAM cache-page pool.
 *
 * HSCC manages a fixed pool of DRAM pages (512 in the paper) as a
 * cache over NVM, categorized into free, clean and dirty lists that
 * are refreshed at the start of each migration interval.  Selecting a
 * destination page prefers free, then clean (drop the old mapping),
 * then dirty (copy the old contents back to NVM first) — the cost
 * split the paper's Table VI quantifies.
 */

#ifndef KINDLE_HSCC_DRAM_POOL_HH
#define KINDLE_HSCC_DRAM_POOL_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "base/stats.hh"
#include "os/frame_alloc.hh"

namespace kindle::hscc
{

/** Classification of one pool page. */
enum class PoolState : std::uint8_t
{
    free,
    clean,
    dirty,
};

/** One pool page and its current occupancy. */
struct PoolEntry
{
    Addr dramFrame = invalidAddr;
    Addr nvmHome = invalidAddr;  ///< NVM page cached here (if any)
    PoolState state = PoolState::free;
    /** Bound during the current migration interval: such pages are
     *  displaced only as a last resort (they are the hottest). */
    bool fresh = false;
};

/** What page selection found. */
struct Selection
{
    unsigned index = 0;          ///< pool slot chosen
    Addr dramFrame = invalidAddr;
    Addr displacedNvm = invalidAddr;  ///< previous occupant (if any)
    bool needsCopyBack = false;  ///< displaced page was dirty
};

/** The pool. */
class DramPool
{
  public:
    /**
     * @param pages Pool size; frames are drawn from @p dram_alloc.
     */
    DramPool(unsigned pages, os::FrameAllocator &dram_alloc);

    unsigned size() const { return static_cast<unsigned>(entries.size()); }

    /** Slots currently free / clean / dirty. */
    unsigned freeCount() const;
    unsigned cleanCount() const;
    unsigned dirtyCount() const;

    /**
     * Pick a destination page: free, else clean, else dirty.
     * @return the selection, or std::nullopt when the pool is empty
     *         (cannot happen with a non-zero pool).
     */
    Selection select();

    /** Bind @p nvm_home to the selected slot (post-copy). */
    void bind(unsigned index, Addr nvm_home);

    /** Release the slot caching @p nvm_home (page unmapped). */
    void release(Addr nvm_home);

    /** A store hit the DRAM copy of @p nvm_home: mark dirty. */
    void markDirty(Addr nvm_home);

    /** Interval start: re-derive the three lists. */
    void refreshLists();

    /** Pool entry caching @p nvm_home, or nullptr. */
    const PoolEntry *entryFor(Addr nvm_home) const;

    const std::vector<PoolEntry> &allEntries() const { return entries; }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    std::vector<PoolEntry> entries;
    std::unordered_map<Addr, unsigned> byNvmHome;
    std::deque<unsigned> freeList;
    std::deque<unsigned> cleanList;
    std::deque<unsigned> dirtyList;
    std::deque<unsigned> freshList;  ///< bound this interval

    /** Refresh the occupancy gauges from the entry states. */
    void updateGauges();

    statistics::StatGroup statGroup;
    statistics::Scalar &selFree;
    statistics::Scalar &selClean;
    statistics::Scalar &selDirty;
    /** Level stats (gauges, not counters): current slot occupancy. */
    statistics::Gauge &freePages;
    statistics::Gauge &cleanPages;
    statistics::Gauge &dirtyPages;
};

} // namespace kindle::hscc

#endif // KINDLE_HSCC_DRAM_POOL_HH
