#include "hscc/dram_pool.hh"

#include "base/logging.hh"

namespace kindle::hscc
{

DramPool::DramPool(unsigned pages, os::FrameAllocator &dram_alloc)
    : statGroup("dramPool", "HSCC DRAM page pool (free/clean/dirty)"),
      selFree(statGroup.addScalar("selFree",
                                  "selections from the free list")),
      selClean(statGroup.addScalar("selClean",
                                   "selections from the clean list")),
      selDirty(statGroup.addScalar(
          "selDirty", "selections needing dirty copy-back")),
      freePages(statGroup.addGauge("freePages",
                                   "pool slots currently free")),
      cleanPages(statGroup.addGauge("cleanPages",
                                    "pool slots caching clean pages")),
      dirtyPages(statGroup.addGauge("dirtyPages",
                                    "pool slots caching dirty pages"))
{
    kindle_assert(pages > 0, "empty DRAM pool");
    entries.reserve(pages);
    for (unsigned i = 0; i < pages; ++i) {
        PoolEntry e;
        e.dramFrame = dram_alloc.tryAlloc();
        if (e.dramFrame == invalidAddr) {
            // A pressure-shrunk DRAM zone may not fit the configured
            // pool; run with what the zone could supply rather than
            // aborting — a smaller cache is slower, not wrong.
            warn("hscc: DRAM pool shrunk to {} pages ({} requested; "
                 "zone exhausted)", i, pages);
            break;
        }
        entries.push_back(e);
        freeList.push_back(i);
    }
    kindle_assert(!entries.empty(),
                  "hscc: no DRAM frames at all for the page pool");
    updateGauges();
}

void
DramPool::updateGauges()
{
    unsigned free_n = 0, clean_n = 0, dirty_n = 0;
    for (const PoolEntry &e : entries) {
        switch (e.state) {
          case PoolState::free:
            ++free_n;
            break;
          case PoolState::clean:
            ++clean_n;
            break;
          case PoolState::dirty:
            ++dirty_n;
            break;
        }
    }
    freePages = free_n;
    cleanPages = clean_n;
    dirtyPages = dirty_n;
}

unsigned
DramPool::freeCount() const
{
    return static_cast<unsigned>(freeList.size());
}

unsigned
DramPool::cleanCount() const
{
    return static_cast<unsigned>(cleanList.size());
}

unsigned
DramPool::dirtyCount() const
{
    return static_cast<unsigned>(dirtyList.size());
}

Selection
DramPool::select()
{
    Selection sel;
    bool found = false;

    if (!freeList.empty()) {
        ++selFree;
        sel.index = freeList.front();
        freeList.pop_front();
        found = true;
    }

    // Clean list next — but entries may have been dirtied by stores
    // since the interval-start refresh, in which case reusing them
    // without a copy-back would drop data; demote such entries to the
    // dirty list instead.
    while (!found && !cleanList.empty()) {
        const unsigned idx = cleanList.front();
        cleanList.pop_front();
        if (entries[idx].state == PoolState::dirty) {
            dirtyList.push_back(idx);
            continue;
        }
        if (entries[idx].state != PoolState::clean)
            continue;  // released since the refresh
        ++selClean;
        sel.index = idx;
        sel.displacedNvm = entries[idx].nvmHome;
        found = true;
    }

    while (!found && !dirtyList.empty()) {
        const unsigned idx = dirtyList.front();
        dirtyList.pop_front();
        if (entries[idx].state != PoolState::dirty)
            continue;
        ++selDirty;
        sel.index = idx;
        sel.displacedNvm = entries[idx].nvmHome;
        sel.needsCopyBack = true;
        found = true;
    }

    // Last resort: displace a page bound earlier in this same
    // interval (it cannot be dirty yet — the application has not run
    // since it was bound).
    while (!found && !freshList.empty()) {
        const unsigned idx = freshList.front();
        freshList.pop_front();
        if (entries[idx].state == PoolState::free)
            continue;
        (entries[idx].state == PoolState::dirty ? ++selDirty
                                                : ++selClean);
        sel.index = idx;
        sel.displacedNvm = entries[idx].nvmHome;
        sel.needsCopyBack = entries[idx].state == PoolState::dirty;
        found = true;
    }

    kindle_assert(found, "pool has no pages at all");
    PoolEntry &e = entries[sel.index];
    sel.dramFrame = e.dramFrame;
    if (sel.displacedNvm != invalidAddr)
        byNvmHome.erase(sel.displacedNvm);
    e.nvmHome = invalidAddr;
    e.state = PoolState::free;
    updateGauges();
    return sel;
}

void
DramPool::bind(unsigned index, Addr nvm_home)
{
    PoolEntry &e = entries[index];
    kindle_assert(e.nvmHome == invalidAddr,
                  "binding an occupied pool slot");
    e.nvmHome = nvm_home;
    e.state = PoolState::clean;
    e.fresh = true;
    byNvmHome[nvm_home] = index;
    freshList.push_back(index);
    updateGauges();
}

void
DramPool::release(Addr nvm_home)
{
    const auto it = byNvmHome.find(nvm_home);
    if (it == byNvmHome.end())
        return;
    const unsigned index = it->second;
    byNvmHome.erase(it);
    PoolEntry &e = entries[index];
    e.nvmHome = invalidAddr;
    e.state = PoolState::free;
    // Lists are rebuilt wholesale at refreshLists(); drop lazily by
    // rebuilding now to keep the invariants simple and exact.
    refreshLists();
}

void
DramPool::markDirty(Addr nvm_home)
{
    const auto it = byNvmHome.find(nvm_home);
    if (it == byNvmHome.end())
        return;
    entries[it->second].state = PoolState::dirty;
    updateGauges();
}

void
DramPool::refreshLists()
{
    freeList.clear();
    cleanList.clear();
    dirtyList.clear();
    freshList.clear();
    for (unsigned i = 0; i < entries.size(); ++i) {
        entries[i].fresh = false;
        switch (entries[i].state) {
          case PoolState::free:
            freeList.push_back(i);
            break;
          case PoolState::clean:
            cleanList.push_back(i);
            break;
          case PoolState::dirty:
            dirtyList.push_back(i);
            break;
        }
    }
    updateGauges();
}

const PoolEntry *
DramPool::entryFor(Addr nvm_home) const
{
    const auto it = byNvmHome.find(nvm_home);
    return it == byNvmHome.end() ? nullptr : &entries[it->second];
}

} // namespace kindle::hscc
