/**
 * @file
 * Hardware/Software Cooperative Caching (HSCC) prototype [23] on
 * Kindle.
 *
 * HSCC arranges DRAM and NVM in a flat address space and manages a
 * pool of DRAM pages as an OS-assisted cache over NVM.  Per-NVM-page
 * access counts live in PTE ignored bits and in the TLB (incremented
 * on LLC misses, written back on TLB eviction or once per interval).
 * Every migration interval (31.25 ms, the paper's 10^8-cycle figure)
 * the OS scans the counts with a software page-table walk, migrates
 * pages above the fetch threshold into DRAM (page selection + page
 * copy), resets all counts, and invalidates TLB entries.
 *
 * The engine can run with OS costs suppressed (`chargeOsTime=false`),
 * reproducing the paper's "hardware-only migration" baseline that
 * user-level simulators like ZSim implicitly measure — the comparison
 * behind Figure 6.
 */

#ifndef KINDLE_HSCC_HSCC_ENGINE_HH
#define KINDLE_HSCC_HSCC_ENGINE_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cpu/core.hh"
#include "hscc/dram_pool.hh"
#include "hscc/mapping_table.hh"
#include "os/kernel.hh"

namespace kindle::hscc
{

/** HSCC configuration. */
struct HsccParams
{
    unsigned dramPoolPages = 512;       ///< paper §III-C
    Tick migrationInterval = 31250 * oneUs;  ///< 31.25 ms
    unsigned fetchThreshold = 5;        ///< paper: 5 / 25 / 50
    bool chargeOsTime = true;           ///< false = hardware-only

    /**
     * Extension beyond the Kindle prototype (which fixes the
     * threshold to static values): adjust the fetch threshold each
     * interval from pool pressure, as the original HSCC proposes.
     * Candidates flooding past the pool double the threshold;
     * sustained underutilization halves it.
     */
    bool dynamicThreshold = false;
    unsigned minThreshold = 2;
    unsigned maxThreshold = 512;
};

/** The engine. */
class HsccEngine : public cpu::CoreHooks, public os::OsEventListener
{
  public:
    HsccEngine(const HsccParams &params, os::Kernel &kernel);
    ~HsccEngine() override;

    HsccEngine(const HsccEngine &) = delete;
    HsccEngine &operator=(const HsccEngine &) = delete;

    void start();
    void stop();

    /** Run one migration interval's OS activity immediately. */
    void migrate();

    /** @name cpu::CoreHooks. */
    /// @{
    void onLlcMiss(cpu::TlbEntry &entry, Addr vaddr,
                   bool is_write) override;
    void onDataWrite(cpu::TlbEntry &entry, Addr vaddr,
                     std::uint64_t size) override;
    /// @}

    /** @name os::OsEventListener. */
    /// @{
    bool resolveRemappedFrame(os::Process &proc, Addr vaddr,
                              Addr mapped_frame,
                              Addr *home_out) override;
    /// @}

    /** @name Result accessors (Tables V/VI, Figure 6). */
    /// @{
    std::uint64_t pagesMigrated() const
    {
        return static_cast<std::uint64_t>(migrated.value());
    }
    Tick selectionTicks() const
    {
        return static_cast<Tick>(selTicks.value());
    }
    Tick copyTicks() const
    {
        return static_cast<Tick>(cpTicks.value());
    }
    Tick migrationTicks() const
    {
        return static_cast<Tick>(migTicks.value());
    }
    /// @}

    DramPool &pool() { return dramPool; }
    MappingTable &mappingTable() { return mapTable; }

    /** The threshold in force (moves under dynamicThreshold). */
    unsigned currentThreshold() const { return curThreshold; }

    statistics::StatGroup &stats() { return statGroup; }

  private:
    class MigrateEvent : public sim::Event
    {
      public:
        explicit MigrateEvent(HsccEngine &e)
            : Event("hsccMigrate", Priority::migration), engine(e)
        {}
        void process() override;

      private:
        HsccEngine &engine;
    };

    /** Where a cached NVM page is mapped (for reverts). */
    struct CachedAt
    {
        Pid pid;
        Addr vaddr;
        Addr pteAddr;
    };

    /** One migration candidate found by the scan. */
    struct Candidate
    {
        os::Process *proc;
        Addr vaddr;
        Addr pteAddr;
        cpu::Pte pte;
    };

    /** PTE store respecting the chargeOsTime switch. */
    void ptePut(Addr pte_addr, cpu::Pte pte);
    /** PTE load respecting the chargeOsTime switch. */
    cpu::Pte pteGet(Addr pte_addr);
    void handleTlbEvict(const cpu::TlbEntry &entry);
    /** Revert the PTE of a displaced cached page back to its home. */
    void revertMapping(Addr nvm_home);
    /** Functional (untimed) leaf scan for the baseline mode. */
    void scanLeaves(Addr table, unsigned level, Addr va_base,
                    const std::function<void(Addr, cpu::Pte, Addr)> &fn);

    HsccParams _params;
    os::Kernel &kernel;
    DramPool dramPool;
    MappingTable mapTable;

    MigrateEvent migrateEvent;
    bool started = false;
    /** Per-core TLB evict-hook handles (index == CpuId). */
    std::vector<std::size_t> evictHookHandles;
    unsigned curThreshold = 0;

    std::unordered_map<Addr, CachedAt> cachedPages;  ///< by NVM frame
    std::unordered_set<Addr> dirtyHomes;  ///< already-marked-dirty

    statistics::StatGroup statGroup;
    statistics::Scalar &migrated;
    statistics::Scalar &intervals;
    statistics::Scalar &candidatesSeen;
    statistics::Scalar &reverts;
    statistics::Scalar &copyBacks;
    statistics::Scalar &selTicks;
    statistics::Scalar &cpTicks;
    statistics::Scalar &migTicks;
    statistics::Scalar &countWritebacks;
    statistics::Scalar &thresholdRaises;
    statistics::Scalar &thresholdDrops;
};

} // namespace kindle::hscc

#endif // KINDLE_HSCC_HSCC_ENGINE_HH
