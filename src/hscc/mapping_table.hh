/**
 * @file
 * The HSCC NVM↔DRAM mapping lookup table.
 *
 * The original HSCC widens PTEs to 96 bits to hold both page numbers,
 * which truncates last-level-table fanout (341 entries per 4 KiB page,
 * leaving 171 pages of every 2 MiB region unmappable).  Kindle instead
 * keeps 64-bit PTEs and maintains the NVM↔DRAM association in this
 * separate table, looked up by either page number (paper §III-C).
 * Entries live in kernel DRAM; each consult/update is charged one
 * memory access.
 */

#ifndef KINDLE_HSCC_MAPPING_TABLE_HH
#define KINDLE_HSCC_MAPPING_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "base/stats.hh"
#include "os/frame_alloc.hh"
#include "os/kernel_mem.hh"

namespace kindle::hscc
{

/** One 16-byte table entry. */
struct MapEntry
{
    std::uint64_t nvmFrame = 0;
    std::uint64_t dramFrame = 0;
};

static_assert(sizeof(MapEntry) == 16);

/** The table. */
class MappingTable
{
  public:
    /**
     * @param slots       Capacity (= DRAM pool size).
     * @param kmem        Kernel memory gateway.
     * @param dram_alloc  Supplies the frames holding the table.
     */
    MappingTable(unsigned slots, os::KernelMem &kmem,
                 os::FrameAllocator &dram_alloc);

    /** Record nvm→dram at pool slot @p index (timed write). */
    void set(unsigned index, Addr nvm_frame, Addr dram_frame);

    /** Clear slot @p index (timed write). */
    void clear(unsigned index);

    /**
     * Look up the DRAM frame caching @p nvm_frame (timed read).
     * @return invalidAddr when not cached.
     */
    Addr dramFor(Addr nvm_frame);

    /**
     * Reverse lookup: the NVM home of pool page @p dram_frame
     * (timed read).
     */
    Addr nvmFor(Addr dram_frame);

    statistics::StatGroup &stats() { return statGroup; }

  private:
    Addr slotAddr(unsigned index) const;

    os::KernelMem &kmem;
    unsigned slots;
    Addr tableBase;

    /** Host index mirroring the table for O(1) slot location. */
    std::unordered_map<Addr, unsigned> byNvm;
    std::unordered_map<Addr, unsigned> byDram;

    statistics::StatGroup statGroup;
    statistics::Scalar &lookups;
    statistics::Scalar &updates;
};

} // namespace kindle::hscc

#endif // KINDLE_HSCC_MAPPING_TABLE_HH
