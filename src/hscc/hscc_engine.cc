#include "hscc/hscc_engine.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/str.hh"
#include "base/trace_flags.hh"
#include "fault/fault.hh"
#include "trace/trace.hh"

namespace kindle::hscc
{

using cpu::Pte;

void
HsccEngine::MigrateEvent::process()
{
    engine.migrate();
    if (engine.started) {
        engine.kernel.simulation().eventq().schedule(
            this, engine.kernel.simulation().now() +
                      engine._params.migrationInterval);
    }
}

HsccEngine::HsccEngine(const HsccParams &params, os::Kernel &kernel_arg)
    : _params(params),
      kernel(kernel_arg),
      dramPool(params.dramPoolPages, kernel_arg.dramAllocator()),
      mapTable(params.dramPoolPages, kernel_arg.kmem(),
               kernel_arg.dramAllocator()),
      migrateEvent(*this),
      statGroup("hscc",
                "HW/SW cooperative DRAM caching engine"),
      migrated(statGroup.addScalar("pagesMigrated",
                                   "NVM pages migrated to DRAM")),
      intervals(statGroup.addScalar("intervals",
                                    "migration intervals run")),
      candidatesSeen(statGroup.addScalar(
          "candidates", "pages above the fetch threshold")),
      reverts(statGroup.addScalar("reverts",
                                  "cached pages displaced")),
      copyBacks(statGroup.addScalar("copyBacks",
                                    "dirty DRAM→NVM copy-backs")),
      selTicks(statGroup.addScalar("selectionTicks",
                                   "time in page selection")),
      cpTicks(statGroup.addScalar("copyTicks", "time in page copy")),
      migTicks(statGroup.addScalar("migrationTicks",
                                   "total OS migration time")),
      countWritebacks(statGroup.addScalar(
          "countWritebacks", "TLB→PTE access-count spills")),
      thresholdRaises(statGroup.addScalar(
          "thresholdRaises", "dynamic threshold increases")),
      thresholdDrops(statGroup.addScalar(
          "thresholdDrops", "dynamic threshold decreases"))
{
    curThreshold = params.fetchThreshold;
    statGroup.addChild(dramPool.stats());
    statGroup.addChild(mapTable.stats());
}

HsccEngine::~HsccEngine()
{
    stop();
}

void
HsccEngine::start()
{
    if (started)
        return;
    started = true;
    // Access counting happens in every core's translation hardware.
    for (CpuId c = 0; c < kernel.numCores(); ++c) {
        cpu::Core &core = kernel.core(c);
        core.addHooks(this);
        evictHookHandles.push_back(core.tlb().addEvictHook(
            [this](const cpu::TlbEntry &e) { handleTlbEvict(e); }));
        core.msrs().write(cpu::MsrId::hsccEnable, 1);
    }
    kernel.addListener(this);
    auto &sim = kernel.simulation();
    sim.eventq().schedule(&migrateEvent,
                          sim.now() + _params.migrationInterval);
}

void
HsccEngine::stop()
{
    if (!started)
        return;
    started = false;
    for (CpuId c = 0; c < kernel.numCores(); ++c) {
        cpu::Core &core = kernel.core(c);
        core.removeHooks(this);
        core.tlb().removeEvictHook(evictHookHandles[c]);
        core.msrs().write(cpu::MsrId::hsccEnable, 0);
    }
    evictHookHandles.clear();
    kernel.removeListener(this);
    kernel.simulation().eventq().deschedule(&migrateEvent);
}

Pte
HsccEngine::pteGet(Addr pte_addr)
{
    if (_params.chargeOsTime)
        return Pte{kernel.kmem().read64(pte_addr)};
    return Pte{kernel.kmem().mem().readT<std::uint64_t>(pte_addr)};
}

void
HsccEngine::ptePut(Addr pte_addr, Pte pte)
{
    if (_params.chargeOsTime)
        kernel.kmem().write64(pte_addr, pte.raw);
    else
        kernel.kmem().mem().writeT<std::uint64_t>(pte_addr, pte.raw);
}

void
HsccEngine::onLlcMiss(cpu::TlbEntry &entry, Addr vaddr, bool is_write)
{
    (void)vaddr;
    (void)is_write;
    if (!entry.nvmBacked || entry.hsccRemapped)
        return;
    if (entry.accessCount < 1023)
        ++entry.accessCount;
    if (!entry.countSyncedThisInterval) {
        // Hardware writes the count out once per migration interval
        // during translation; further increments stay TLB-local.
        entry.countSyncedThisInterval = true;
        ++countWritebacks;
        Pte pte{kernel.kmem().mem().readT<std::uint64_t>(entry.pteAddr)};
        pte.setAccessCount(entry.accessCount);
        // Count spills are hardware-generated stores and always cost.
        kernel.kmem().write64(entry.pteAddr, pte.raw);
    }
}

void
HsccEngine::onDataWrite(cpu::TlbEntry &entry, Addr vaddr,
                        std::uint64_t size)
{
    (void)vaddr;
    (void)size;
    if (!entry.hsccRemapped)
        return;
    // A store to a DRAM-cached page dirties its pool slot (first
    // transition only; later stores are free host-side checks).
    const Addr dram_frame = entry.pfn << pageShift;
    const Addr home = mapTable.nvmFor(dram_frame);
    if (home == invalidAddr || dirtyHomes.count(home))
        return;
    dirtyHomes.insert(home);
    dramPool.markDirty(home);
}

void
HsccEngine::handleTlbEvict(const cpu::TlbEntry &entry)
{
    if (!entry.nvmBacked || entry.hsccRemapped ||
        entry.accessCount == 0) {
        return;
    }
    // Access count written out to the PTE on TLB eviction.
    ++countWritebacks;
    Pte pte{kernel.kmem().mem().readT<std::uint64_t>(entry.pteAddr)};
    if (entry.accessCount > pte.accessCount()) {
        pte.setAccessCount(entry.accessCount);
        kernel.kmem().write64(entry.pteAddr, pte.raw);
    }
}

void
HsccEngine::revertMapping(Addr nvm_home)
{
    const auto it = cachedPages.find(nvm_home);
    if (it == cachedPages.end())
        return;
    ++reverts;
    Pte pte = pteGet(it->second.pteAddr);
    if (pte.present() && pte.hsccRemapped()) {
        pte.setPfn(nvm_home >> pageShift);
        pte.setHsccRemapped(false);
        pte.setAccessCount(0);
        ptePut(it->second.pteAddr, pte);
    }
    // The PTE changed under a possibly-running process: every core's
    // stale translation must go, not just the local one.
    kernel.shootdownPage(it->second.pid, it->second.vaddr);
    dirtyHomes.erase(nvm_home);
    cachedPages.erase(it);
}

void
HsccEngine::scanLeaves(
    Addr table, unsigned level, Addr va_base,
    const std::function<void(Addr, Pte, Addr)> &fn)
{
    const std::uint64_t span =
        std::uint64_t(1) << (pageShift + level * cpu::ptIndexBits);
    auto &mem = kernel.kmem().mem();
    for (unsigned i = 0; i < cpu::ptEntriesPerPage; ++i) {
        const Addr entry_addr = table + i * cpu::ptEntrySize;
        const Pte pte{mem.readT<std::uint64_t>(entry_addr)};
        if (!pte.present())
            continue;
        const Addr va = va_base + i * span;
        if (level == 0)
            fn(va, pte, entry_addr);
        else
            scanLeaves(pte.frameAddr(), level - 1, va, fn);
    }
}

void
HsccEngine::migrate()
{
    auto &sim = kernel.simulation();
    const Tick t0 = sim.now();
    KINDLE_TRACE_SPAN(hscc, hscc, "hscc.migrate");
    ++intervals;

    // Interval start: refresh the pool's free/clean/dirty lists.  In
    // OS-cost mode, charge one mapping-table read per pool slot for
    // the list derivation.
    dramPool.refreshLists();
    if (_params.chargeOsTime) {
        for (unsigned i = 0; i < dramPool.size(); ++i)
            kernel.kmem().read64(kernel.nvmLayout().hsccTable);
    }

    // Spill TLB-resident counts so the PTE scan sees fresh values.
    for (CpuId c = 0; c < kernel.numCores(); ++c) {
        kernel.core(c).tlb().forEachValid([&](cpu::TlbEntry &e) {
            if (!e.nvmBacked || e.hsccRemapped || e.accessCount == 0)
                return;
            Pte pte{
                kernel.kmem().mem().readT<std::uint64_t>(e.pteAddr)};
            if (e.accessCount > pte.accessCount()) {
                pte.setAccessCount(e.accessCount);
                ptePut(e.pteAddr, pte);
            }
        });
    }

    // Candidate scan: software page-table walk over every process.
    std::vector<Candidate> candidates;
    std::vector<std::pair<Addr, os::Process *>> counted;
    for (const auto &proc : kernel.processes()) {
        if (proc->state == os::ProcState::zombie ||
            proc->ptRoot == invalidAddr) {
            continue;
        }
        const auto visit = [&](Addr va, Pte pte, Addr entry_addr) {
            if (!pte.nvmBacked() || pte.hsccRemapped())
                return;
            if (pte.accessCount() > 0)
                counted.emplace_back(entry_addr, proc.get());
            if (pte.accessCount() >= curThreshold) {
                candidates.push_back(
                    {proc.get(), va, entry_addr, pte});
            }
        };
        if (_params.chargeOsTime) {
            kernel.pageTables().forEachLeaf(proc->ptRoot, visit);
        } else {
            scanLeaves(proc->ptRoot, cpu::ptLevels - 1, 0, visit);
        }
    }
    candidatesSeen += static_cast<double>(candidates.size());

    // Migrate each candidate: page selection, then page copy.
    for (const Candidate &c : candidates) {
        // --- Page selection ---------------------------------------
        const Tick sel0 = sim.now();
        KINDLE_TRACE_SPAN_ARGS(hscc, hscc, "hscc.migratePage",
                               "vaddr={}", c.vaddr);
        Selection sel = dramPool.select();
        if (sel.displacedNvm != invalidAddr) {
            if (sel.needsCopyBack) {
                ++copyBacks;
                // Write the dirty DRAM copy back to its NVM home
                // before reusing the page.  The device transfer costs
                // in both modes; the flush management is OS work.
                if (_params.chargeOsTime) {
                    sim.bump(kernel.kmem().hierarchy().clwbPage(
                        sel.dramFrame, sim.now()));
                }
                sim.bump(kernel.kmem().mem().submit(
                    {mem::MemCmd::bulkRead, sel.dramFrame, pageSize},
                    sim.now()));
                sim.bump(kernel.kmem().mem().submit(
                    {mem::MemCmd::bulkWrite, sel.displacedNvm,
                     pageSize},
                    sim.now()));
            }
            revertMapping(sel.displacedNvm);
            if (_params.chargeOsTime)
                mapTable.clear(sel.index);
        }
        selTicks += static_cast<double>(sim.now() - sel0);

        // --- Page copy ---------------------------------------------
        const Tick copy0 = sim.now();
        const Addr nvm_frame = c.pte.frameAddr();
        if (_params.chargeOsTime) {
            // Flush cached lines of the page under migration.
            sim.bump(kernel.kmem().hierarchy().clwbPage(nvm_frame,
                                                        sim.now()));
        }
        sim.bump(kernel.kmem().mem().submit(
            {mem::MemCmd::bulkRead, nvm_frame, pageSize}, sim.now()));
        sim.bump(kernel.kmem().mem().submit(
            {mem::MemCmd::bulkWrite, sel.dramFrame, pageSize},
            sim.now()));
        KINDLE_CRASH_SITE("hscc.after_copy");

        Pte updated = c.pte;
        updated.setPfn(sel.dramFrame >> pageShift);
        updated.setHsccRemapped(true);
        updated.setAccessCount(0);
        ptePut(c.pteAddr, updated);
        mapTable.set(sel.index, nvm_frame, sel.dramFrame);

        dramPool.bind(sel.index, nvm_frame);
        cachedPages[nvm_frame] = {c.proc->pid, c.vaddr, c.pteAddr};
        kernel.shootdownPage(c.proc->pid, c.vaddr);
        ++migrated;
        cpTicks += static_cast<double>(sim.now() - copy0);
    }

    // Reset every counted PTE and invalidate TLB entries so the next
    // interval sees only fresh accesses.
    for (const auto &[entry_addr, proc] : counted) {
        Pte pte = pteGet(entry_addr);
        if (pte.present() && pte.accessCount() > 0 &&
            !pte.hsccRemapped()) {
            pte.setAccessCount(0);
            ptePut(entry_addr, pte);
        }
    }
    for (CpuId c = 0; c < kernel.numCores(); ++c) {
        kernel.core(c).tlb().forEachValid([&](cpu::TlbEntry &e) {
            e.accessCount = 0;
            e.countSyncedThisInterval = false;
        });
    }

    // Dynamic threshold adjustment (extension; see HsccParams).
    if (_params.dynamicThreshold) {
        if (candidates.size() > dramPool.size() &&
            curThreshold < _params.maxThreshold) {
            curThreshold = std::min(_params.maxThreshold,
                                    curThreshold * 2);
            ++thresholdRaises;
        } else if (candidates.size() < dramPool.size() / 4 &&
                   curThreshold > _params.minThreshold) {
            curThreshold =
                std::max(_params.minThreshold, curThreshold / 2);
            ++thresholdDrops;
        }
    }

    migTicks += static_cast<double>(sim.now() - t0);
    trace::dprintf(trace::Flag::hscc, sim.now(),
                   "migration interval: {} candidates, {} total pages",
                   candidates.size(), migrated.value());
}

bool
HsccEngine::resolveRemappedFrame(os::Process &proc, Addr vaddr,
                                 Addr mapped_frame, Addr *home_out)
{
    (void)proc;
    (void)vaddr;
    const Addr home = mapTable.nvmFor(mapped_frame);
    if (home == invalidAddr)
        return false;
    // Reclaim the pool slot; the DRAM frame stays pool-owned.
    dramPool.release(home);
    dirtyHomes.erase(home);
    cachedPages.erase(home);
    *home_out = home;
    return true;
}

} // namespace kindle::hscc
