/**
 * @file
 * Tick-accurate tracing: protocol spans and the crash flight recorder.
 *
 * Every KindleSystem owns one TraceSink.  Instrumented code does not
 * hold a sink pointer: like the fault layer's crash-site probes, spans
 * route through a thread-local registration stack (SinkScope), so the
 * checkpoint pipeline, the recovery phases, the scrubber and friends
 * emit into whichever system is live on the current thread — and
 * concurrent SweepRunner workers each record into their own system's
 * sink with no sharing.
 *
 * Two capture modes, independently enabled:
 *
 *  - Span collection (TraceParams::spans): every record is kept and
 *    can be exported as Chrome trace-event JSON (writeChromeJson),
 *    loadable in Perfetto / chrome://tracing.  One "thread" lane per
 *    simulated component (Lane), nesting by time containment.
 *
 *  - Flight recorder (TraceParams::ringDepth): a fixed ring of the
 *    last N records, cheap enough to leave on for every run.  When a
 *    crash injector fires, recovery reports errors, or the fuzz
 *    oracle diverges, writeFlightRecorder() turns the ring plus the
 *    fault plan and crash site into a self-contained JSON timeline of
 *    the moments before the failure.
 *
 * Records are gated on the base/trace_flags categories (Flag): the
 * sink carries a category mask over the same flag names the
 * KINDLE_DEBUG stderr tracing uses, defaulting to all-on, so
 * "--trace-flags=checkpoint,redo" narrows a trace the same way
 * KINDLE_DEBUG narrows dprintf output — without coupling record
 * capture to the stderr spew.
 *
 * Compile-time kill switch: building with -DKINDLE_TRACE=0 turns the
 * instrumentation macros into no-ops, removing every probe (and its
 * argument evaluation) from the binary.  Timestamps are simulated
 * ticks (picoseconds) end to end; the Chrome export converts to
 * microseconds only at serialization.
 */

#ifndef KINDLE_TRACE_TRACE_HH
#define KINDLE_TRACE_TRACE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "base/trace_flags.hh"
#include "base/types.hh"

#ifndef KINDLE_TRACE
#define KINDLE_TRACE 1
#endif

namespace kindle::trace
{

/**
 * Timeline lane a record renders into — one per simulated component,
 * mapped to a Chrome trace "thread".  Enum order is display order.
 */
enum class Lane : std::uint8_t
{
    sim = 0,
    cpu,
    mem,
    scrub,
    ckpt,
    pt,
    redo,
    recovery,
    hscc,
    ssp,
    os,
    fault,
    numLanes
};

/** Printable lane name ("ckpt", "recovery", ...). */
const char *laneName(Lane lane);

/** One captured span or instant. */
struct TraceRecord
{
    Tick start = 0;
    Tick dur = 0;
    Flag cat = Flag::event;
    Lane lane = Lane::sim;
    /** Static-duration string (macro call sites pass literals). */
    const char *name = "";
    /** Optional preformatted "k=v" payload. */
    std::string args;
    /** Per-sink emission sequence — total order within one system. */
    std::uint64_t seq = 0;
    bool instant = false;
};

/** Capture configuration, carried inside KindleConfig. */
struct TraceParams
{
    /** Keep every record for Chrome-JSON export. */
    bool spans = false;

    /** Flight-recorder depth in records; 0 disables the ring. */
    std::size_t ringDepth = 512;

    /**
     * Comma-separated category names (base/trace_flags vocabulary,
     * e.g. "checkpoint,redo,fault"); empty means all categories.
     */
    std::string categories;

    /**
     * When non-empty, the owning system dumps the flight recorder to
     * this file automatically on an injected power loss or a recovery
     * pass that reports errors.
     */
    std::string flightDumpPath;
};

/** Everything a flight-recorder dump says about why it exists. */
struct FlightContext
{
    /** "power-loss", "recovery-error", "oracle-divergence", ... */
    std::string reason;
    /** Crash site that fired (empty when not site-triggered). */
    std::string crashSite;
    /** Simulated tick of the failure. */
    Tick tick = 0;
    /** Preformatted description of the armed fault plan. */
    std::string faultPlan;
};

/**
 * Per-system trace collector.  Single-threaded by construction (one
 * simulated machine is single threaded); concurrent machines own
 * disjoint sinks.
 */
class TraceSink
{
  public:
    TraceSink(TraceParams params, std::function<Tick()> now_fn);

    /** Would a record in @p cat be captured at all right now? */
    bool
    wants(Flag cat) const
    {
        return capturing && mask[static_cast<unsigned>(cat)];
    }

    Tick now() const { return nowFn(); }

    /** Replace the category mask (empty @p names = all categories). */
    void setCategories(std::string_view names);

    /** Record a completed span [@p start, @p end). */
    void complete(Flag cat, Lane lane, const char *name, Tick start,
                  Tick end, std::string args);

    /** Record an instantaneous event at the current tick. */
    void instant(Flag cat, Lane lane, const char *name,
                 std::string args = {});

    const TraceParams &params() const { return _params; }

    /** Records captured for export (empty unless spans enabled). */
    const std::vector<TraceRecord> &records() const { return _records; }

    /** Total records ever emitted into this sink. */
    std::uint64_t totalRecorded() const { return totalSeen; }

    /** Records currently held by the flight ring. */
    std::size_t ringSize() const;

    /** Ring record @p i, oldest first (i < ringSize()). */
    const TraceRecord &ringAt(std::size_t i) const;

    /**
     * Export collected spans as Chrome trace-event JSON: metadata
     * names the process and one thread per used lane, then complete
     * ("X") and instant ("i") events sorted chronologically (ties
     * broken longest-duration-first so nested spans stay inside
     * their parents).
     */
    void writeChromeJson(std::ostream &os) const;

    /** Dump the flight ring plus @p ctx as one JSON object. */
    void writeFlightRecorder(std::ostream &os,
                             const FlightContext &ctx) const;

  private:
    void push(TraceRecord &&rec);

    TraceParams _params;
    std::function<Tick()> nowFn;

    bool capturing = false;
    std::array<bool, static_cast<unsigned>(Flag::numFlags)> mask{};

    std::vector<TraceRecord> _records;
    std::vector<TraceRecord> ring;
    std::size_t ringNext = 0;
    std::uint64_t totalSeen = 0;
};

/**
 * RAII registration of a system's sink (may be null) on this thread's
 * routing stack; mirrors fault::InjectorScope.  The most recent
 * registration wins, so a sink-less system shadows any older sink
 * instead of leaking records to it.
 */
class SinkScope
{
  public:
    explicit SinkScope(TraceSink *sink);
    ~SinkScope();

    SinkScope(const SinkScope &) = delete;
    SinkScope &operator=(const SinkScope &) = delete;

  private:
    TraceSink *sink;
};

/** The sink records route to on this thread (may be null). */
TraceSink *currentSink();

/**
 * RAII protocol span: captures the start tick at construction and
 * emits one complete record at destruction.  When tracing is off (no
 * sink, or the category is masked) construction is one thread-local
 * load plus two branches and the destructor does nothing.
 */
class TraceSpan
{
  public:
    TraceSpan(Flag cat, Lane lane, const char *name)
    {
        TraceSink *s = currentSink();
        if (s && s->wants(cat)) {
            sink = s;
            this->cat = cat;
            this->lane = lane;
            this->name = name;
            start = s->now();
        }
    }

    ~TraceSpan()
    {
        if (sink) {
            sink->complete(cat, lane, name, start, sink->now(),
                           std::move(args));
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** True when this span will be recorded (guard arg formatting). */
    bool active() const { return sink != nullptr; }

    /** Attach a preformatted "k=v" payload to the record. */
    void setArgs(std::string a) { args = std::move(a); }

  private:
    TraceSink *sink = nullptr;
    Tick start = 0;
    Flag cat = Flag::event;
    Lane lane = Lane::sim;
    const char *name = "";
    std::string args;
};

/** Free-function instant probe (mirrors fault::crashSite). */
inline void
emitInstant(Flag cat, Lane lane, const char *name,
            std::string args = {})
{
    TraceSink *s = currentSink();
    if (s && s->wants(cat))
        s->instant(cat, lane, name, std::move(args));
}

} // namespace kindle::trace

/**
 * Instrumentation macros.  All of them vanish (including argument
 * evaluation) when compiled with -DKINDLE_TRACE=0.
 *
 *   KINDLE_TRACE_SPAN(checkpoint, ckpt, "ckpt.ptWalk");
 *   KINDLE_TRACE_SPAN_ARGS(checkpoint, ckpt, "ckpt.process",
 *                          "pid={}", pid);
 *   KINDLE_TRACE_INSTANT(redo, redo, "redo.append");
 *
 * The first two declare an anonymous RAII span covering the rest of
 * the enclosing block; the _ARGS form formats its payload only when
 * the span is actually being recorded.
 */
#define KINDLE_TRACE_CAT2_(a, b) a##b
#define KINDLE_TRACE_CAT_(a, b) KINDLE_TRACE_CAT2_(a, b)

#if KINDLE_TRACE

#define KINDLE_TRACE_SPAN(cat, lane, name)                              \
    ::kindle::trace::TraceSpan KINDLE_TRACE_CAT_(kindleSpan_,           \
                                                 __LINE__)(             \
        ::kindle::trace::Flag::cat, ::kindle::trace::Lane::lane, name)

#define KINDLE_TRACE_SPAN_ARGS(cat, lane, name, ...)                    \
    ::kindle::trace::TraceSpan KINDLE_TRACE_CAT_(kindleSpan_,           \
                                                 __LINE__)(             \
        ::kindle::trace::Flag::cat, ::kindle::trace::Lane::lane,        \
        name);                                                          \
    if (KINDLE_TRACE_CAT_(kindleSpan_, __LINE__).active())              \
        KINDLE_TRACE_CAT_(kindleSpan_, __LINE__)                        \
            .setArgs(::kindle::csprintf(__VA_ARGS__))

#define KINDLE_TRACE_INSTANT(cat, lane, name)                           \
    ::kindle::trace::emitInstant(::kindle::trace::Flag::cat,            \
                                 ::kindle::trace::Lane::lane, name)

#define KINDLE_TRACE_INSTANT_ARGS(cat, lane, name, ...)                 \
    do {                                                                \
        ::kindle::trace::TraceSink *kindleSink_ =                       \
            ::kindle::trace::currentSink();                             \
        if (kindleSink_ &&                                              \
            kindleSink_->wants(::kindle::trace::Flag::cat)) {           \
            kindleSink_->instant(::kindle::trace::Flag::cat,            \
                                 ::kindle::trace::Lane::lane, name,     \
                                 ::kindle::csprintf(__VA_ARGS__));      \
        }                                                               \
    } while (0)

#else // !KINDLE_TRACE

#define KINDLE_TRACE_SPAN(cat, lane, name) ((void)0)
#define KINDLE_TRACE_SPAN_ARGS(cat, lane, name, ...) ((void)0)
#define KINDLE_TRACE_INSTANT(cat, lane, name) ((void)0)
#define KINDLE_TRACE_INSTANT_ARGS(cat, lane, name, ...) ((void)0)

#endif // KINDLE_TRACE

#endif // KINDLE_TRACE_TRACE_HH
