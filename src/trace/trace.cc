#include "trace/trace.hh"

#include <algorithm>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/str.hh"

namespace kindle::trace
{

namespace
{

constexpr std::array<const char *,
                     static_cast<unsigned>(Lane::numLanes)>
    laneNames = {
        "sim",  "cpu",      "mem",  "scrub", "ckpt", "pt",
        "redo", "recovery", "hscc", "ssp",   "os",   "fault",
};

// Sink routing stack, one per thread (mirrors the fault injector's).
// A vector, not a single pointer, so nested system lifetimes (a test
// constructing a scratch system inside another's scope) unwind
// correctly.
thread_local std::vector<TraceSink *> sinkStack;

} // namespace

const char *
laneName(Lane lane)
{
    return laneNames[static_cast<unsigned>(lane)];
}

TraceSink::TraceSink(TraceParams params, std::function<Tick()> now_fn)
    : _params(std::move(params)), nowFn(std::move(now_fn))
{
    kindle_assert(nowFn != nullptr, "TraceSink needs a clock");
    capturing = _params.spans || _params.ringDepth > 0;
    if (_params.ringDepth > 0)
        ring.resize(_params.ringDepth);
    setCategories(_params.categories);
}

void
TraceSink::setCategories(std::string_view names)
{
    if (trim(names).empty()) {
        mask.fill(true);
        return;
    }
    mask.fill(false);
    for (const auto &name : split(names, ',')) {
        const std::string wanted = trim(name);
        if (wanted.empty())
            continue;
        Flag f;
        if (flagFromName(wanted, f))
            mask[static_cast<unsigned>(f)] = true;
        else
            warn("unknown trace category '{}'", wanted);
    }
}

void
TraceSink::push(TraceRecord &&rec)
{
    rec.seq = totalSeen++;
    if (_params.ringDepth > 0) {
        ring[ringNext] = _params.spans ? rec : std::move(rec);
        ringNext = (ringNext + 1) % _params.ringDepth;
    }
    if (_params.spans)
        _records.push_back(std::move(rec));
}

void
TraceSink::complete(Flag cat, Lane lane, const char *name, Tick start,
                    Tick end, std::string args)
{
    TraceRecord rec;
    rec.start = start;
    rec.dur = end >= start ? end - start : 0;
    rec.cat = cat;
    rec.lane = lane;
    rec.name = name;
    rec.args = std::move(args);
    push(std::move(rec));
}

void
TraceSink::instant(Flag cat, Lane lane, const char *name,
                   std::string args)
{
    TraceRecord rec;
    rec.start = nowFn();
    rec.cat = cat;
    rec.lane = lane;
    rec.name = name;
    rec.args = std::move(args);
    rec.instant = true;
    push(std::move(rec));
}

std::size_t
TraceSink::ringSize() const
{
    if (_params.ringDepth == 0)
        return 0;
    return totalSeen < _params.ringDepth
               ? static_cast<std::size_t>(totalSeen)
               : _params.ringDepth;
}

const TraceRecord &
TraceSink::ringAt(std::size_t i) const
{
    kindle_assert(i < ringSize(), "flight-recorder index out of range");
    if (totalSeen < _params.ringDepth)
        return ring[i];
    return ring[(ringNext + i) % _params.ringDepth];
}

namespace
{

/** Simulated picoseconds → Chrome's microsecond timestamp unit. */
double
ticksToChromeUs(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

void
writeEventArgs(json::Writer &w, const TraceRecord &rec)
{
    w.key("args");
    w.beginObject();
    w.keyValue("cat", flagName(rec.cat));
    if (!rec.args.empty())
        w.keyValue("detail", rec.args);
    w.endObject();
}

} // namespace

void
TraceSink::writeChromeJson(std::ostream &os) const
{
    // Chronological export: Perfetto requires a parent complete event
    // to precede the children it encloses, which (start asc, dur
    // desc) guarantees; seq breaks the remaining ties so output is
    // deterministic.
    std::vector<const TraceRecord *> sorted;
    sorted.reserve(_records.size());
    for (const auto &rec : _records)
        sorted.push_back(&rec);
    std::sort(sorted.begin(), sorted.end(),
              [](const TraceRecord *a, const TraceRecord *b) {
                  if (a->start != b->start)
                      return a->start < b->start;
                  if (a->dur != b->dur)
                      return a->dur > b->dur;
                  return a->seq < b->seq;
              });

    std::array<bool, static_cast<unsigned>(Lane::numLanes)> laneUsed{};
    for (const auto *rec : sorted)
        laneUsed[static_cast<unsigned>(rec->lane)] = true;

    json::Writer w(os);
    w.beginObject();
    w.keyValue("displayTimeUnit", "ns");
    w.key("traceEvents");
    w.beginArray();

    // Metadata: name the process and each used lane; sort lanes in
    // enum (display) order.
    w.beginObject();
    w.keyValue("name", "process_name");
    w.keyValue("ph", "M");
    w.keyValue("pid", 1);
    w.keyValue("tid", 0);
    w.key("args");
    w.beginObject();
    w.keyValue("name", "kindle");
    w.endObject();
    w.endObject();
    for (unsigned lane = 0;
         lane < static_cast<unsigned>(Lane::numLanes); ++lane) {
        if (!laneUsed[lane])
            continue;
        w.beginObject();
        w.keyValue("name", "thread_name");
        w.keyValue("ph", "M");
        w.keyValue("pid", 1);
        w.keyValue("tid", lane);
        w.key("args");
        w.beginObject();
        w.keyValue("name", laneNames[lane]);
        w.endObject();
        w.endObject();
        w.beginObject();
        w.keyValue("name", "thread_sort_index");
        w.keyValue("ph", "M");
        w.keyValue("pid", 1);
        w.keyValue("tid", lane);
        w.key("args");
        w.beginObject();
        w.keyValue("sort_index", lane);
        w.endObject();
        w.endObject();
    }

    for (const auto *rec : sorted) {
        w.beginObject();
        w.keyValue("name", rec->name);
        w.keyValue("cat", flagName(rec->cat));
        w.keyValue("ph", rec->instant ? "i" : "X");
        w.keyValue("ts", ticksToChromeUs(rec->start));
        if (!rec->instant)
            w.keyValue("dur", ticksToChromeUs(rec->dur));
        else
            w.keyValue("s", "t");
        w.keyValue("pid", 1);
        w.keyValue("tid", static_cast<unsigned>(rec->lane));
        writeEventArgs(w, *rec);
        w.endObject();
    }

    w.endArray();
    w.endObject();
    os << '\n';
    kindle_assert(w.balanced(), "trace export left unbalanced JSON");
}

void
TraceSink::writeFlightRecorder(std::ostream &os,
                               const FlightContext &ctx) const
{
    json::Writer w(os);
    w.beginObject();
    w.keyValue("reason", ctx.reason);
    w.keyValue("crashSite", ctx.crashSite);
    w.keyValue("tick", static_cast<std::uint64_t>(ctx.tick));
    w.keyValue("faultPlan", ctx.faultPlan);
    w.keyValue("ringDepth",
               static_cast<std::uint64_t>(_params.ringDepth));
    w.keyValue("totalRecorded", totalSeen);
    const std::size_t n = ringSize();
    w.keyValue("dropped", totalSeen - n);
    w.key("records");
    w.beginArray();
    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &rec = ringAt(i);
        w.beginObject();
        w.keyValue("seq", rec.seq);
        w.keyValue("tick", static_cast<std::uint64_t>(rec.start));
        if (!rec.instant)
            w.keyValue("dur", static_cast<std::uint64_t>(rec.dur));
        w.keyValue("lane", laneName(rec.lane));
        w.keyValue("cat", flagName(rec.cat));
        w.keyValue("name", rec.name);
        if (!rec.args.empty())
            w.keyValue("detail", rec.args);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
    kindle_assert(w.balanced(),
                  "flight-recorder dump left unbalanced JSON");
}

SinkScope::SinkScope(TraceSink *sink) : sink(sink)
{
    sinkStack.push_back(sink);
}

SinkScope::~SinkScope()
{
    kindle_assert(!sinkStack.empty() && sinkStack.back() == sink,
                  "trace sink scopes must unwind LIFO");
    sinkStack.pop_back();
}

TraceSink *
currentSink()
{
    return sinkStack.empty() ? nullptr : sinkStack.back();
}

} // namespace kindle::trace
